"""Memory-server admission control: token buckets, bounded queues, bulkheads.

Under closed-loop load a NAM memory server can never be pushed past
saturation — clients politely wait for replies. Under *open-loop* load
(docs/overload.md) arrivals keep coming whether or not the server keeps
up, and an unbounded SRQ turns every excess request into queueing delay:
latency grows linearly with the backlog and the system "collapses"
exactly as the flash-crowd experiment (``ext_overload``) shows.

:class:`AdmissionController` is the fix. It sits on the enqueue path
(:meth:`repro.nam.memory_server.MemoryServer.submit`) and decides, in
zero simulated time, whether an arriving RPC envelope may occupy queue
space. Rejected envelopes are completed immediately with a
:class:`~repro.nam.rpc.ThrottledResponse` — the NIC bounces the message
without ever waking a worker, so a flood's rejections cost wire time but
no server CPU.

Everything here is deterministic: token buckets refill from elapsed
simulated time, no randomness, no wall clocks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.config import AdmissionConfig
from repro.nam.rpc import ThrottledResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.rdma.qp import RpcEnvelope
    from repro.sim.resources import Store

__all__ = ["TokenBucket", "AdmissionController", "SHARED_POOL"]

#: Queue key for tenants without a dedicated bulkhead.
SHARED_POOL = "shared"


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Refill is computed lazily from elapsed simulated time on every
    :meth:`try_take`, so the bucket costs no events and no timers.
    """

    __slots__ = ("rate", "burst", "tokens", "_last_refill")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_refill = now

    def try_take(self, now: float) -> bool:
        """Consume one token if available; refills from elapsed sim time."""
        elapsed = now - self._last_refill
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-memory-server admission policy (docs/overload.md).

    Gates, in order, cheapest first:

    1. token bucket for rate-limited tenants (``reason="rate-limit"``);
    2. bounded worker-pool queue (``reason="queue-full"``).

    Bulkhead routing itself never rejects — it only decides *which*
    bounded queue (dedicated vs. shared) the request competes for, so a
    flooding tenant fills its own queue and leaves the shared pool alone.
    """

    def __init__(self, server, config: AdmissionConfig) -> None:
        self.server = server
        self.config = config
        self._buckets: Dict[Optional[str], TokenBucket] = {}
        if config.tenant_rate_ops:
            now = server.sim.now
            for tenant, rate in config.tenant_rate_ops.items():
                self._buckets[tenant] = TokenBucket(
                    rate, config.tenant_burst_ops, now
                )
        #: Rejections by reason, for tests and pull collectors.
        self.rejected: Dict[str, int] = {"rate-limit": 0, "queue-full": 0}
        self.admitted = 0

    def pool_of(self, tenant: Optional[str]) -> str:
        """Queue key the tenant's requests compete for."""
        bulkheads = self.config.bulkhead_workers
        if bulkheads and tenant in bulkheads:
            return tenant  # type: ignore[return-value]
        return SHARED_POOL

    def submit(self, envelope: "RpcEnvelope") -> None:
        """Admit *envelope* onto its pool's queue, or bounce it NIC-side."""
        tenant = envelope.tenant
        bucket = self._buckets.get(tenant)
        now = self.server.sim.now
        if bucket is not None and not bucket.try_take(now):
            self._reject(envelope, "rate-limit")
            return
        queue: "Store" = self.server.rpc_queue(self.pool_of(tenant))
        if not queue.try_put(envelope):
            if bucket is not None:
                # The request died at the queue gate; hand the rate token
                # back so the bucket meters *admitted* work only.
                bucket.tokens = min(bucket.burst, bucket.tokens + 1.0)
            self._reject(envelope, "queue-full")
            return
        self.admitted += 1
        if envelope.qp.fabric.injector is not None:
            # Remember that this logical call has an admitted attempt so a
            # later retransmit's bounce can be suppressed (see _reject).
            envelope.qp._rpc_admitted.add(envelope.seq)
        obs = self.server.obs
        if obs is not None:
            obs.admission_accepted(self.server.server_id)

    def _reject(self, envelope: "RpcEnvelope", reason: str) -> None:
        self.rejected[reason] += 1
        obs = self.server.obs
        if obs is not None:
            obs.admission_rejected(self.server.server_id, reason)
        qp = envelope.qp
        if qp.fabric.injector is not None and envelope.seq in qp._rpc_admitted:
            # An earlier attempt of this logical call was admitted and may
            # be queued or executing right now; completing the shared reply
            # with a bounce would let the client claim "no side effect"
            # while the admitted attempt mutates state. Drop the bounce —
            # the admitted attempt (or the retry loop's timeout) answers.
            return
        # Bounce at the NIC: ship a header-sized rejection back over the
        # wire without consuming a worker. The client raises
        # ThrottledError/AdmissionRejectedError when it sees the marker.
        response = ThrottledResponse(reason)
        envelope.complete(response, response.wire_bytes)
