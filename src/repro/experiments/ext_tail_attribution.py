"""Extension: where does the tail go? Critical-path latency attribution.

The paper's latency analysis (Section 2.3, Figures 13/14) reports *how
long* operations take per design; this harness reports *where that time
goes* — and, more to the point, where the **p99 tail** spends time that
the median op does not. Each cell runs an open-loop single-tenant
workload against one traversal design with observability enabled, then
post-processes the retained span trees through
:mod:`repro.obs.attribution` into the closed segment taxonomy
(``nic_queue``, ``network_flight``, ``server_rpc_queue``, ``server_cpu``,
``lock_wait``, ``client_backoff``, ``admission_reject``,
``client_think``).

Grid: design (coarse-grained / fine-grained / hybrid) x request skew
(uniform / zipf) x load phase (steady / flash crowd). Admission control
is enabled, so the flash cells exercise the rejection segment, tenant
SLO violations feed the flight recorder, and the per-server time series
capture the burst. The headline: steady-state attribution is dominated
by wire flight, while the flash-crowd tail shifts toward queueing
segments — per design, the decomposition names the bottleneck the
design's own tradeoffs predict.

Doubles as the tail-smoke regression gate: ``--check BASELINE`` compares
goodput per cell (tolerance ``TOLERANCE``) and re-asserts structural
invariants — every cell retains spans, every attribution reconciles
(shares sum to 1), flash cells record flight activity.

Run with ``python -m repro.experiments.ext_tail_attribution``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.config import (
    AdmissionConfig,
    ClusterConfig,
    CpuConfig,
    ObservabilityConfig,
)
from repro.experiments.common import (
    build_index,
    format_rate,
    print_table,
    write_obs_artifacts,
)
from repro.experiments.scale import ExperimentScale
from repro.nam.cluster import Cluster
from repro.obs.attribution import (
    SEGMENTS,
    aggregate_attributions,
    attribute_span_dict,
)
from repro.workloads import (
    ArrivalProcess,
    OpenLoopRunner,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
    generate_dataset,
)

__all__ = [
    "TailCell",
    "DESIGNS",
    "SKEWS",
    "PHASES",
    "run",
    "measure_capacity",
    "results_to_json",
    "check_against_baseline",
    "print_figure",
    "main",
    "TOLERANCE",
    "SHARE_SUM_TOLERANCE",
]

DESIGNS: Tuple[str, ...] = ("coarse-grained", "fine-grained", "hybrid")
#: Request-key distributions (WorkloadSpec.distribution values).
SKEWS: Dict[str, str] = {"uniform": "uniform", "zipf": "scrambled_zipfian"}
#: Offered load as a multiple of measured closed-loop capacity. The flash
#: phase offers the steady base rate times a burst multiplier that covers
#: the whole window — a sustained flash crowd.
PHASES: Dict[str, float] = {"steady": 0.6, "flash": 3.0}

#: Allowed per-cell goodput regression vs the committed baseline.
TOLERANCE = 0.20
#: Attribution shares must sum to 1 within this (they reconcile exactly in
#: seconds; normalization only divides by the same duration).
SHARE_SUM_TOLERANCE = 1e-6

#: Single tenant: its p99 SLO (drives derive_slow_from_slo thresholds and
#: flight-recorder slo-violation dumps) and its admission allowance as a
#: fraction of capacity — above steady load, below the flash crowd.
SLO_P99_S = 150e-6
ADMIT_FRACTION = 1.2

CORES_PER_SERVER = 2
PROBE_CLIENTS = 64

DEFAULT_SCALE = ExperimentScale(
    num_keys=8_000,
    num_memory_servers=2,
    memory_servers_per_machine=2,
    warmup_s=0.001,
    measure_s=0.004,
)

#: Tiny grid for the CI tail-smoke job: zipf only, all designs, both
#: phases (the skew axis is the least load-bearing for the gate).
SMOKE = ExperimentScale(
    num_keys=4_000,
    num_memory_servers=2,
    memory_servers_per_machine=2,
    warmup_s=0.0005,
    measure_s=0.002,
)

SMOKE_SKEWS: Tuple[str, ...] = ("zipf",)


@dataclass
class TailCell:
    """One (design, skew, phase) attributed open-loop measurement."""

    design: str
    skew: str
    phase: str
    load_multiple: float
    capacity_ops_s: float
    offered_ops: int
    accepted_ops: int
    rejected_ops: int
    errored_ops: int
    goodput_ops_s: float
    p50_s: float
    p99_s: float
    #: Spans retained by sampling + the slow-op hook (attribution input).
    retained_ops: int
    #: Mean attribution share per segment: typical ops (fastest half) and
    #: tail ops (slowest 1%, at least one).
    p50_share: Dict[str, float] = field(default_factory=dict)
    p99_share: Dict[str, float] = field(default_factory=dict)
    #: The tail's dominant segment (largest p99 share).
    tail_top_segment: str = ""
    flight_dumps: int = 0
    flight_dumps_suppressed: int = 0
    timeseries_points: int = 0

    @property
    def key(self) -> str:
        return cell_key(self.design, self.skew, self.phase)

    @property
    def goodput_fraction(self) -> float:
        if self.capacity_ops_s <= 0:
            return 0.0
        return self.goodput_ops_s / self.capacity_ops_s


def cell_key(design: str, skew: str, phase: str) -> str:
    return f"{design}/{skew}/{phase}"


def _cluster_config(
    capacity: float, scale: ExperimentScale, seed: int
) -> ClusterConfig:
    per_server = ADMIT_FRACTION * capacity / scale.num_memory_servers
    return ClusterConfig(
        num_memory_servers=scale.num_memory_servers,
        memory_servers_per_machine=min(
            scale.memory_servers_per_machine, scale.num_memory_servers
        ),
        seed=seed,
        cpu=CpuConfig(cores_per_server=CORES_PER_SERVER),
        admission=AdmissionConfig(
            enabled=True,
            max_queue_depth=16,
            tenant_rate_ops={"app": per_server},
            tenant_burst_ops=32.0,
        ),
        observability=ObservabilityConfig(
            enabled=True,
            sample_every=8,
            timeseries_cadence_s=scale.measure_s / 16.0,
            derive_slow_from_slo=True,
        ),
    )


def measure_capacity(
    design: str, scale: ExperimentScale, seed: int
) -> float:
    """Closed-loop saturation throughput of *design* at this shape (the
    open-loop cells' calibration reference; see ext_overload)."""
    dataset = generate_dataset(scale.num_keys, scale.gap)
    config = ClusterConfig(
        num_memory_servers=scale.num_memory_servers,
        memory_servers_per_machine=min(
            scale.memory_servers_per_machine, scale.num_memory_servers
        ),
        seed=seed,
        cpu=CpuConfig(cores_per_server=CORES_PER_SERVER),
    )
    cluster = Cluster(config)
    index = build_index(cluster, design, dataset)
    runner = WorkloadRunner(cluster, dataset)
    result = runner.run(
        index,
        WorkloadSpec(name="capacity-probe", point_fraction=1.0),
        num_clients=PROBE_CLIENTS,
        warmup_s=scale.warmup_s,
        measure_s=scale.measure_s,
        seed=seed,
    )
    return result.throughput


def _tenant(capacity: float, skew: str, phase: str) -> TenantSpec:
    base_rate = PHASES["steady"] * capacity
    multiplier = PHASES[phase] / PHASES["steady"]
    if multiplier > 1.0:
        arrivals = ArrivalProcess(
            rate_ops_per_s=base_rate,
            burst_multiplier=multiplier,
            burst_start_s=0.0,
            burst_duration_s=1.0,
        )
    else:
        arrivals = ArrivalProcess(rate_ops_per_s=base_rate)
    return TenantSpec(
        name="app",
        # 5% inserts keep lock traffic (and the lock_wait segment) alive.
        workload=WorkloadSpec(
            name=f"tail-{skew}",
            point_fraction=0.95,
            insert_fraction=0.05,
            distribution=SKEWS[skew],
        ),
        arrivals=arrivals,
        slo_p99_s=SLO_P99_S,
        max_op_retries=1,
        sessions=16,
    )


def _attribution_summary(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """Typical-vs-tail attribution shares over a snapshot's retained spans."""
    seen: set = set()
    attributed: List[Tuple[float, Dict[str, float]]] = []
    for group in ("sampled_spans", "slow_spans"):
        for span in snapshot.get(group, []):
            if span["op_id"] in seen:
                continue
            seen.add(span["op_id"])
            finished = span["finished_at"]
            if finished is None:
                finished = span["started_at"]
            attributed.append(
                (finished - span["started_at"], attribute_span_dict(span))
            )
    attributed.sort(key=lambda item: item[0])
    if not attributed:
        return {"retained": 0, "p50_share": {}, "p99_share": {}, "top": ""}
    typical = attributed[: max(1, len(attributed) // 2)]
    tail = attributed[-max(1, len(attributed) // 100):]
    p50 = aggregate_attributions(attr for _d, attr in typical)
    p99 = aggregate_attributions(attr for _d, attr in tail)
    top = max(SEGMENTS, key=lambda label: p99[label])
    return {"retained": len(attributed), "p50_share": p50,
            "p99_share": p99, "top": top}


def _measure_cell(
    design: str,
    skew: str,
    phase: str,
    capacity: float,
    scale: ExperimentScale,
    seed: int,
    artifacts: Optional[Path] = None,
) -> TailCell:
    dataset = generate_dataset(scale.num_keys, scale.gap)
    cluster = Cluster(_cluster_config(capacity, scale, seed))
    index = build_index(cluster, design, dataset)
    runner = OpenLoopRunner(cluster, dataset)
    result = runner.run(
        index,
        [_tenant(capacity, skew, phase)],
        warmup_s=scale.warmup_s,
        measure_s=scale.measure_s,
        seed=seed,
    )
    snapshot = result.observability
    summary = _attribution_summary(snapshot)
    flight = snapshot.get("flight", {})
    latencies = [
        latency
        for outcome in result.tenants.values()
        for latency in outcome.latencies
    ]
    cell = TailCell(
        design=design,
        skew=skew,
        phase=phase,
        load_multiple=PHASES[phase],
        capacity_ops_s=capacity,
        offered_ops=result.offered_ops,
        accepted_ops=result.accepted_ops,
        rejected_ops=result.rejected_ops,
        errored_ops=result.errored_ops,
        goodput_ops_s=result.goodput,
        p50_s=float(np.percentile(latencies, 50)) if latencies else 0.0,
        p99_s=float(np.percentile(latencies, 99)) if latencies else 0.0,
        retained_ops=summary["retained"],
        p50_share=summary["p50_share"],
        p99_share=summary["p99_share"],
        tail_top_segment=summary["top"],
        flight_dumps=len(flight.get("dumps", [])),
        flight_dumps_suppressed=flight.get("dumps_suppressed", 0),
        timeseries_points=sum(
            len(series["points"]) for series in snapshot.get("timeseries", [])
        ),
    )
    if artifacts is not None:
        write_obs_artifacts(snapshot, artifacts, cell.key.replace("/", "-"))
    return cell


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    seed: Optional[int] = None,
    skews: Optional[Tuple[str, ...]] = None,
    artifacts: Optional[Path] = None,
) -> Dict[str, TailCell]:
    """Measure the design x skew x phase grid; keyed by ``design/skew/phase``."""
    seed = scale.seed if seed is None else seed
    if skews is None:
        skews = tuple(SKEWS)
    results: Dict[str, TailCell] = {}
    for design in DESIGNS:
        capacity = measure_capacity(design, scale, seed)
        for skew in skews:
            for phase in PHASES:
                cell = _measure_cell(
                    design, skew, phase, capacity, scale, seed,
                    artifacts=artifacts,
                )
                results[cell.key] = cell
    return results


def results_to_json(results: Dict[str, TailCell]) -> Dict:
    """A JSON-serializable snapshot (the BENCH_tail.json payload)."""
    return {
        "segments": list(SEGMENTS),
        "cells": {key: asdict(cell) for key, cell in results.items()},
    }


def check_against_baseline(
    results: Dict[str, TailCell], baseline: Dict
) -> List[str]:
    """Regression failures of *results* vs a committed *baseline* payload.

    Gates per-cell goodput (tolerance ``TOLERANCE``) and re-asserts the
    structural invariants the attribution stack promises: every cell
    retains spans, every reported share vector sums to 1, and the flash
    cells actually exercised the flight recorder.
    """
    failures: List[str] = []
    base_cells = baseline.get("cells", {})
    for key, cell in results.items():
        base = base_cells.get(key)
        if base is None:
            failures.append(f"{key}: missing from baseline")
            continue
        reference = base.get("goodput_ops_s", 0.0)
        if reference > 0 and cell.goodput_ops_s < (1.0 - TOLERANCE) * reference:
            failures.append(
                f"{key}: goodput regressed {cell.goodput_ops_s:.0f} < "
                f"{(1.0 - TOLERANCE) * reference:.0f} "
                f"(baseline {reference:.0f}, tolerance {TOLERANCE:.0%})"
            )
        if cell.retained_ops <= 0:
            failures.append(f"{key}: no spans retained for attribution")
            continue
        for name, share in (("p50", cell.p50_share), ("p99", cell.p99_share)):
            total = sum(share.get(label, 0.0) for label in SEGMENTS)
            if abs(total - 1.0) > SHARE_SUM_TOLERANCE:
                failures.append(
                    f"{key}: {name} attribution shares sum to {total!r}, "
                    f"not 1 (reconciliation broken)"
                )
        if cell.timeseries_points <= 0:
            failures.append(f"{key}: no time-series points sampled")
        if cell.phase == "flash" and (
            cell.flight_dumps + cell.flight_dumps_suppressed
        ) <= 0:
            failures.append(
                f"{key}: flash crowd produced no flight-recorder activity"
            )
    return failures


def print_figure(results: Dict[str, TailCell]) -> None:
    """One table per design; rows are skew/phase cells."""
    skews = [
        skew for skew in SKEWS
        if any(cell.skew == skew for cell in results.values())
    ]
    for design in DESIGNS:
        rows = {}
        capacity = 0.0
        for skew in skews:
            for phase in PHASES:
                cell = results.get(cell_key(design, skew, phase))
                if cell is None:
                    continue
                capacity = cell.capacity_ops_s
                top = cell.tail_top_segment
                top_share = cell.p99_share.get(top, 0.0)
                rows[f"{skew}/{phase}"] = [
                    f"{cell.offered_ops}",
                    format_rate(cell.goodput_ops_s),
                    f"{cell.p50_s * 1e6:.0f}us",
                    f"{cell.p99_s * 1e6:.0f}us",
                    f"{cell.rejected_ops}",
                    f"{top} {top_share:.0%}" if top else "-",
                    f"{cell.flight_dumps}+{cell.flight_dumps_suppressed}",
                ]
        if not rows:
            continue
        print_table(
            f"Extension - tail-latency attribution, design={design} "
            f"(capacity {format_rate(capacity)}/s)",
            ["offered", "goodput", "p50", "p99", "rejected",
             "tail bottleneck", "dumps"],
            rows,
            col_header="cell",
        )
    print(
        "  tail bottleneck = largest p99 attribution share "
        "(dumps = kept+suppressed flight bundles)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="critical-path tail attribution sweep + tail-smoke gate"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI grid (faster)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write results to this file"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="compare against this baseline JSON; exit non-zero on regression",
    )
    parser.add_argument(
        "--update-baseline",
        type=Path,
        default=None,
        help="write this run's numbers as the new baseline",
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="write per-cell flight bundles + Chrome traces into this dir",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        results = run(
            scale=SMOKE, seed=args.seed, skews=SMOKE_SKEWS,
            artifacts=args.artifacts,
        )
    else:
        results = run(seed=args.seed, artifacts=args.artifacts)
    print_figure(results)
    payload = results_to_json(results)
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.update_baseline is not None:
        args.update_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.update_baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {args.update_baseline}")
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(results, baseline)
        for failure in failures:
            print(f"TAIL REGRESSION: {failure}")
        if failures:
            return 1
        print(f"tail check OK vs {args.check} ({len(results)} cells)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
