"""Tests for range/hash partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.index.partitioning import HashPartitioner, RangePartitioner, mix64
from repro.workloads.datagen import skew_fractions


class TestRangePartitioner:
    def test_uniform_partitions(self):
        part = RangePartitioner.uniform(1000, 4)
        assert part.boundaries == [0, 250, 500, 750]
        assert part.server_for_key(0) == 0
        assert part.server_for_key(249) == 0
        assert part.server_for_key(250) == 1
        assert part.server_for_key(999) == 3
        # Keys beyond the nominal space stay on the last server.
        assert part.server_for_key(5000) == 3

    def test_from_fractions_matches_paper_skew(self):
        part = RangePartitioner.from_fractions(1000, (0.80, 0.12, 0.05, 0.03))
        assert part.boundaries == [0, 800, 920, 970]

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner.from_fractions(1000, (0.5, 0.4))

    def test_empty_partitions_rejected(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner.from_fractions(10, (0.99, 0.005, 0.005))

    def test_range_routing_contiguous(self):
        part = RangePartitioner.uniform(1000, 4)
        assert part.servers_for_range(0, 100) == [0]
        assert part.servers_for_range(200, 600) == [0, 1, 2]
        assert part.servers_for_range(900, 950) == [3]
        assert part.servers_for_range(5, 5) == []

    def test_boundaries_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner([10, 20])

    def test_partition_bounds(self):
        part = RangePartitioner.uniform(1000, 4)
        assert part.partition_bounds(0, 1000) == (0, 250)
        assert part.partition_bounds(3, 1000) == (750, 1000)


class TestHashPartitioner:
    def test_point_routing_is_deterministic_and_spread(self):
        part = HashPartitioner(4)
        assignments = [part.server_for_key(k) for k in range(10_000)]
        assert assignments == [part.server_for_key(k) for k in range(10_000)]
        counts = [assignments.count(s) for s in range(4)]
        assert min(counts) > 2000  # roughly balanced

    def test_range_routing_fans_to_all_servers(self):
        part = HashPartitioner(4)
        assert part.servers_for_range(10, 20) == [0, 1, 2, 3]
        assert part.servers_for_range(10, 10) == []


class TestRoundRobinPartitioner:
    def test_stride_one_interleaves_keys(self):
        from repro.index.partitioning import RoundRobinPartitioner

        part = RoundRobinPartitioner(4)
        assert [part.server_for_key(k) for k in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_stride_groups_keys(self):
        from repro.index.partitioning import RoundRobinPartitioner

        part = RoundRobinPartitioner(2, stride=10)
        assert part.server_for_key(0) == 0
        assert part.server_for_key(9) == 0
        assert part.server_for_key(10) == 1
        assert part.server_for_key(20) == 0

    def test_short_range_touches_few_servers(self):
        from repro.index.partitioning import RoundRobinPartitioner

        part = RoundRobinPartitioner(4, stride=100)
        assert part.servers_for_range(0, 50) == [0]
        assert part.servers_for_range(50, 150) == [0, 1]
        assert part.servers_for_range(0, 1000) == [0, 1, 2, 3]
        assert part.servers_for_range(5, 5) == []

    def test_stride_one_ranges_fan_out(self):
        from repro.index.partitioning import RoundRobinPartitioner

        part = RoundRobinPartitioner(4)
        assert part.servers_for_range(10, 12) == [2, 3]
        assert part.servers_for_range(10, 20) == [0, 1, 2, 3]

    def test_validation(self):
        from repro.index.partitioning import RoundRobinPartitioner

        with pytest.raises(ConfigurationError):
            RoundRobinPartitioner(0)
        with pytest.raises(ConfigurationError):
            RoundRobinPartitioner(2, stride=0)
        with pytest.raises(ConfigurationError):
            RoundRobinPartitioner(2).server_for_key(-1)

    def test_works_end_to_end_with_cg_index(self):
        from repro import Cluster, ClusterConfig, CoarseGrainedIndex
        from repro.index.partitioning import RoundRobinPartitioner
        from repro.workloads import generate_dataset

        cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=3))
        dataset = generate_dataset(400, gap=4)
        index = CoarseGrainedIndex.build(
            cluster,
            "rr",
            dataset.pairs(),
            partitioner=RoundRobinPartitioner(4, stride=64),
        )
        session = index.session(cluster.new_compute_server())
        assert cluster.execute(session.lookup(dataset.key_at(123))) == [123]
        got = cluster.execute(session.range_scan(0, dataset.key_space))
        assert got == dataset.pairs()


def test_mix64_is_bijective_on_samples():
    values = {mix64(k) for k in range(100_000)}
    assert len(values) == 100_000


class TestSkewFractions:
    def test_four_servers_match_paper(self):
        assert skew_fractions(4) == (0.80, 0.12, 0.05, 0.03)

    def test_generic_sums_to_one(self):
        for servers in (1, 2, 3, 5, 8):
            assert sum(skew_fractions(servers)) == pytest.approx(1.0)

    def test_hot_server_dominates(self):
        fractions = skew_fractions(8)
        assert fractions[0] == 0.80
        assert all(earlier >= later for earlier, later
                   in zip(fractions[1:], fractions[2:]))


@given(
    key=st.integers(min_value=0, max_value=10_000),
    servers=st.integers(min_value=1, max_value=16),
)
def test_point_server_always_in_its_range_cover(key, servers):
    """server_for_key(k) is among servers_for_range for any range around k."""
    part = RangePartitioner.uniform(10_001, servers)
    owner = part.server_for_key(key)
    assert owner in part.servers_for_range(key, key + 1)
    assert owner in part.servers_for_range(max(0, key - 5), key + 5)


@given(
    low=st.integers(min_value=0, max_value=999),
    span=st.integers(min_value=1, max_value=999),
)
def test_range_cover_is_contiguous_and_minimal(low, span):
    part = RangePartitioner.from_fractions(1000, (0.80, 0.12, 0.05, 0.03))
    cover = part.servers_for_range(low, low + span)
    assert cover == list(range(cover[0], cover[-1] + 1))
    # Every covered server really intersects the range.
    for server in cover:
        p_low, p_high = part.partition_bounds(server, 1 << 60)
        assert p_low < low + span and p_high > low
