"""Chaos tests: workloads under seeded message faults and server crashes.

Every test here drives real index sessions through the fault-injecting
fabric. The correctness contract under faults is:

* every operation either completes with a correct result or raises a
  typed :class:`~repro.errors.TimeoutError_` subclass — never a silent
  wrong answer, never an untyped exception;
* the tree structure is never corrupted: post-chaos full scans are sorted
  and :meth:`~repro.btree.algorithm.BLinkTree.validate` passes;
* with the default (no-op) plan attached, behavior is indistinguishable
  from a fault-free run.
"""

from __future__ import annotations

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    CoarseGrainedIndex,
    ComputeCrash,
    FaultPlan,
    FineGrainedIndex,
    HybridIndex,
    RetriesExhaustedError,
    RetryConfig,
    ServerCrash,
    TimeoutError_,
    verify_index,
)
from repro.errors import ConfigurationError
from repro.rdma.verbs import Verb
from repro.workloads import WorkloadRunner, WorkloadSpec, generate_dataset

MIXED = WorkloadSpec(
    name="chaos-mix",
    point_fraction=0.5,
    range_fraction=0.1,
    insert_fraction=0.3,
    delete_fraction=0.1,
    selectivity=0.005,
)


def _build(design, cluster, pairs, key_space):
    if design == "coarse-grained":
        return CoarseGrainedIndex.build(cluster, "idx", pairs, key_space=key_space)
    if design == "fine-grained":
        return FineGrainedIndex.build(cluster, "idx", pairs)
    return HybridIndex.build(cluster, "idx", pairs, key_space=key_space)


def _validate_all(design, cluster, index):
    """Run the structural validator over every tree of the index."""
    compute = cluster.new_compute_server()
    if design == "fine-grained":
        trees = [index.tree_for(compute)]
    elif design == "coarse-grained":
        trees = [
            index.local_tree(sid) for sid in range(cluster.num_memory_servers)
        ]
    else:
        trees = [
            index.gc_tree(compute, sid)
            for sid in range(cluster.num_memory_servers)
        ]
    total = 0
    for tree in trees:
        stats = cluster.execute(tree.validate())
        total += stats["entries"]
    return total


class TestPlanValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(verb_drop={Verb.READ: -0.1})
        with pytest.raises(ConfigurationError):
            ServerCrash(0, at_s=0.001, down_for_s=0.0)
        with pytest.raises(ConfigurationError):
            ComputeCrash(0, at_s=-1.0)

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert not FaultPlan(drop_probability=0.1).is_noop()
        assert not FaultPlan(
            server_crashes=(ServerCrash(0, at_s=0.1, down_for_s=0.1),)
        ).is_noop()

    def test_single_injector_per_cluster(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=1))
        cluster.attach_faults(FaultPlan())
        with pytest.raises(ConfigurationError):
            cluster.attach_faults(FaultPlan())
        cluster.detach_faults()
        cluster.attach_faults(FaultPlan())


class TestNoopPlan:
    """A no-op plan must not change any observable result."""

    def test_results_identical_with_noop_injector(self):
        outcomes = []
        for attach in (False, True):
            cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=3))
            dataset = generate_dataset(300, gap=4)
            index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
            if attach:
                injector = cluster.attach_faults(FaultPlan())
            session = index.session(cluster.new_compute_server())
            results = []
            for i in range(40):
                key = dataset.key_at(i * 7 % dataset.num_keys)
                results.append(sorted(cluster.execute(session.lookup(key))))
                cluster.execute(session.insert(key + 1, 9000 + i))
            results.append(cluster.execute(session.range_scan(0, 160)))
            outcomes.append(results)
            if attach:
                assert all(
                    count == 0
                    for name, count in injector.stats.items()
                    if name != "retries"
                )
        assert outcomes[0] == outcomes[1]


class TestMessageFaults:
    def test_total_read_drop_raises_typed_error(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=5))
        dataset = generate_dataset(200, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan(verb_drop={Verb.READ: 1.0}))
        session = index.session(cluster.new_compute_server())
        with pytest.raises(RetriesExhaustedError):
            cluster.execute(session.lookup(dataset.key_at(10)))
        retry = cluster.config.retry
        assert injector.stats["drops"] == retry.max_attempts
        assert injector.stats["retries"] == retry.max_attempts - 1
        assert isinstance(RetriesExhaustedError("x"), TimeoutError_)

    def test_server_drop_overrides_verb_drop(self):
        # server_drop has the highest precedence: pinning both servers to
        # zero makes a READ-dropping plan harmless.
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=5))
        dataset = generate_dataset(200, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        cluster.attach_faults(
            FaultPlan(verb_drop={Verb.READ: 1.0}, server_drop={0: 0.0, 1: 0.0})
        )
        session = index.session(cluster.new_compute_server())
        assert cluster.execute(session.lookup(dataset.key_at(10))) == [10]

    def test_duplicates_are_suppressed(self):
        # Duplicate every message: one-sided effects still apply once and
        # RPC handlers run once (sequence-number dedup), so results are
        # correct for both access paths.
        for design in ("fine-grained", "coarse-grained"):
            cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=6))
            dataset = generate_dataset(200, gap=4)
            index = _build(design, cluster, dataset.pairs(), dataset.key_space)
            injector = cluster.attach_faults(FaultPlan(duplicate_probability=1.0))
            session = index.session(cluster.new_compute_server())
            cluster.execute(session.insert(3, 777))
            assert sorted(cluster.execute(session.lookup(3))) == [777]
            assert cluster.execute(session.lookup(dataset.key_at(5))) == [5]
            assert injector.stats["duplicates"] > 0

    def test_delays_slow_but_do_not_break(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=7))
        dataset = generate_dataset(200, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        session = index.session(cluster.new_compute_server())
        t0 = cluster.now
        cluster.execute(session.lookup(dataset.key_at(9)))
        clean = cluster.now - t0
        injector = cluster.attach_faults(
            FaultPlan(delay_probability=1.0, delay_s=50e-6)
        )
        t0 = cluster.now
        assert cluster.execute(session.lookup(dataset.key_at(9))) == [9]
        assert cluster.now - t0 > clean
        assert injector.stats["delays"] > 0


class TestComputeCrash:
    def test_registered_processes_are_killed(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=8))
        injector = cluster.attach_faults(FaultPlan())
        log = []

        def looper():
            while True:
                yield cluster.sim.timeout(1e-6)
                log.append(cluster.now)

        proc = cluster.spawn(looper())
        injector.register_client(0, proc)
        cluster.run(until=5e-6)
        injector.kill_compute_server(0)
        seen = len(log)
        cluster.run(until=50e-6)
        assert len(log) == seen  # no progress after the kill
        assert proc.triggered  # joins on the dead process complete
        assert injector.stats["compute_crashes"] == 1
        assert injector.stats["killed_processes"] == 1
        # Registering onto an already-dead server kills immediately.
        late = cluster.spawn(looper())
        injector.register_client(0, late)
        cluster.run(until=60e-6)
        assert not log[seen:]

    def test_scheduled_compute_crash(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=8))
        injector = cluster.attach_faults(
            FaultPlan(compute_crashes=(ComputeCrash(0, at_s=3e-6),))
        )

        def looper():
            while True:
                yield cluster.sim.timeout(1e-6)

        proc = cluster.spawn(looper())
        injector.register_client(0, proc)
        cluster.run(until=10e-6)
        assert injector.compute_server_down(0)
        assert proc.triggered


@pytest.mark.parametrize(
    "design", ["coarse-grained", "fine-grained", "hybrid"]
)
def test_chaos_workload_never_corrupts_tree(design):
    """Mixed YCSB workload under drops, delays, duplicates and a
    mid-workload memory-server crash/restart, on every design.

    Operations may fail with typed errors (counted by the runner), but the
    surviving structure must validate and scans must stay sorted.
    """
    cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=21))
    dataset = generate_dataset(600, gap=4)
    index = _build(design, cluster, dataset.pairs(), dataset.key_space)
    injector = cluster.attach_faults(
        FaultPlan(
            seed=13,
            drop_probability=0.02,
            delay_probability=0.05,
            delay_s=30e-6,
            duplicate_probability=0.02,
            server_crashes=(ServerCrash(1, at_s=0.004, down_for_s=0.002),),
        )
    )
    runner = WorkloadRunner(cluster, dataset, clients_per_compute_server=8)
    result = runner.run(
        index, MIXED, num_clients=8, warmup_s=0.001, measure_s=0.009, seed=17
    )
    assert result.total_ops > 0
    assert injector.stats["drops"] > 0
    assert injector.stats["server_crashes"] == 1
    assert injector.stats["server_restarts"] == 1
    # Failed operations surface as typed errors, never as wrong results.
    assert all(name == "RetriesExhaustedError" for name in result.errors)

    injector.quiesce()
    session = index.session(cluster.new_compute_server())
    scan = cluster.execute(session.range_scan(0, dataset.key_space * 2))
    keys = [key for key, _value in scan]
    assert keys == sorted(keys)
    assert _validate_all(design, cluster, index) > 0
    report = verify_index(cluster, index)
    assert report.ok, report.violations


def test_acceptance_drop_crash_scan_matches_oracle():
    """The headline chaos scenario from the issue: 5% message drop plus a
    memory-server crash/restart mid-workload on the fine-grained index.

    Clients retry failed operations until success. Inserts use unique keys
    and values; updates are partitioned per client so the final value per
    key is deterministic; there are no deletes. After quiescing the
    injector, a full scan must match the oracle exactly (as a set — a
    retried insert whose first attempt silently succeeded may legitimately
    appear twice in the multimap).
    """
    cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=31))
    dataset = generate_dataset(1_000, gap=4)
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    injector = cluster.attach_faults(
        FaultPlan(
            seed=42,
            drop_probability=0.05,
            server_crashes=(ServerCrash(2, at_s=0.002, down_for_s=0.0015),),
        )
    )

    oracle = {key: {value} for key, value in dataset.pairs()}
    num_clients = 8
    ops_per_client = 260
    progress = []

    def client(cid):
        session = index.session(cluster.new_compute_server())

        def persist(op_factory):
            # Retry the whole operation until one attempt completes. The
            # transport applies effects at most once per attempt, and
            # re-applying these particular ops is harmless (unique-key
            # inserts dedup in the final set compare; updates are
            # idempotent), so retry-until-success is sound.
            while True:
                try:
                    return (yield from op_factory())
                except TimeoutError_:
                    pass

        for i in range(ops_per_client):
            kind = i % 3
            if kind == 0:
                key = dataset.key_space + cid * 100_000 + i
                value = cid * 1_000_000 + i
                yield from persist(lambda: session.insert(key, value))
                oracle[key] = {value}
            elif kind == 1:
                # Each client updates only its own disjoint slice of the
                # original keys, so the final value per key is the client's
                # last update — deterministic despite concurrency.
                slice_size = dataset.num_keys // num_clients
                key = dataset.key_at(cid * slice_size + (i % slice_size))
                value = cid * 1_000_000 + 500_000 + i
                found = yield from persist(lambda: session.update(key, value))
                assert found
                oracle[key] = {value}
            else:
                key = dataset.key_at((cid * 37 + i) % dataset.num_keys)
                got = yield from persist(lambda: session.lookup(key))
                # The key is never deleted, so a lookup must find a value
                # (which one depends on racing updates by other clients).
                assert got
            progress.append(cluster.now)

    procs = [cluster.spawn(client(cid)) for cid in range(num_clients)]
    cluster.sim.run_until_complete(cluster.sim.all_of(procs))

    # The crash really happened mid-workload, and messages really dropped.
    assert injector.stats["server_crashes"] == 1
    assert injector.stats["server_restarts"] == 1
    assert injector.stats["drops"] > 50
    assert max(progress) > 0.0035

    injector.quiesce()
    verifier = index.session(cluster.new_compute_server())
    scan = cluster.execute(
        verifier.range_scan(0, dataset.key_space + num_clients * 100_000 + 1)
    )
    expected = {
        (key, value) for key, values in oracle.items() for value in values
    }
    assert set(scan) == expected
    stats = cluster.execute(
        index.tree_for(cluster.new_compute_server()).validate()
    )
    assert stats["entries"] >= len(oracle)
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    assert report.entries >= len(oracle)


def test_retry_knobs_come_from_config():
    retry = RetryConfig(
        max_attempts=2, timeout_s=30e-6, base_delay_s=10e-6,
        backoff_multiplier=3.0, jitter_fraction=0.0,
    )
    cluster = Cluster(
        ClusterConfig(num_memory_servers=2, seed=9, retry=retry)
    )
    dataset = generate_dataset(200, gap=4)
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    injector = cluster.attach_faults(FaultPlan(drop_probability=1.0))
    session = index.session(cluster.new_compute_server())
    with pytest.raises(RetriesExhaustedError):
        cluster.execute(session.lookup(dataset.key_at(0)))
    assert injector.stats["retries"] == 1  # max_attempts - 1
    assert injector.backoff_delay(0) == pytest.approx(10e-6)
    assert injector.backoff_delay(1) == pytest.approx(30e-6)


def test_retry_config_validation():
    with pytest.raises(ConfigurationError):
        RetryConfig(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryConfig(timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        RetryConfig(backoff_multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryConfig(jitter_fraction=1.0)
    with pytest.raises(ConfigurationError):
        RetryConfig(lock_lease_s=0.0)
