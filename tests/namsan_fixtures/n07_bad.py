"""N07 bad fixture: a lock-order inversion across two functions, plus a
RetryConfig whose literal lease is shorter than its retry budget.

``rebalance_left`` locks the left sibling then (still holding it) calls a
helper that locks the right sibling; ``rebalance_right`` does the mirror
image. Two clients running the two entry points against the same pair of
siblings acquire the locks in opposite orders — the classic distributed
deadlock the per-function N02 check cannot see. Expected findings: one
per cycle edge (2) and one for the lease (3 total).
"""


class Rebalancer:
    def __init__(self, acc):
        self.acc = acc

    def rebalance_left(self, left_ptr, right_ptr, left):
        locked = yield from self.acc.try_lock(left_ptr, left.version)
        if not locked:
            return False
        yield from self._drain_right(right_ptr)
        yield from self.acc.unlock_write(left_ptr, left)
        return True

    def _drain_right(self, right_ptr):
        node = yield from self.acc.read_node(right_ptr)
        locked = yield from self.acc.try_lock(right_ptr, node.version)
        if not locked:
            return
        yield from self.acc.unlock_write(right_ptr, node)

    def rebalance_right(self, left_ptr, right_ptr, right):
        locked = yield from self.acc.try_lock(right_ptr, right.version)
        if not locked:
            return False
        yield from self._drain_left(left_ptr)
        yield from self.acc.unlock_write(right_ptr, right)
        return True

    def _drain_left(self, left_ptr):
        node = yield from self.acc.read_node(left_ptr)
        locked = yield from self.acc.try_lock(left_ptr, node.version)
        if not locked:
            return
        yield from self.acc.unlock_write(left_ptr, node)


def tight_lease_config(RetryConfig):
    # Lease (0.5ms) < 2 * retry budget (1ms with the defaults): a live
    # holder can be lease-stolen mid-write.
    return RetryConfig(lock_lease_s=0.0005)
