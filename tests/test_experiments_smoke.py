"""Smoke tests: every experiment harness runs end to end at a tiny scale.

These guard the benchmark suite — each ``run``/``print_figure`` pair must
execute and produce plausible structures. Shape assertions live in
test_paper_shapes.py; here we only check plumbing.
"""

import pytest

from repro.experiments import (
    a4_caching,
    ablation_head_nodes,
    ablation_insert_contention,
    ablation_srq,
    ext_cache_depth,
    ext_caching_strategies,
    ext_engine,
    ext_page_size,
    ext_request_skew,
    fig03_analytical,
    fig07_08_throughput,
    fig09_network,
    fig10_datasize,
    fig11_servers,
    fig12_inserts,
    fig13_14_latency,
    fig15_colocation,
)
from repro.experiments.scale import ExperimentScale

TINY = ExperimentScale(
    num_keys=1_500,
    clients=(8,),
    selectivities=(0.01,),
    data_sizes=(500, 1_500),
    servers_sweep=(2, 4),
    warmup_s=0.0005,
    measure_s=0.0015,
)

pytestmark = pytest.mark.filterwarnings("ignore")


def test_fig03(capsys):
    series = fig03_analytical.run()
    assert set(series) == {
        "fg (unif/skew)",
        "cg_range (unif)",
        "cg_hash (unif)",
        "cg_range/hash (skew)",
    }
    fig03_analytical.main()
    assert "Figure 3" in capsys.readouterr().out


def test_fig07_08(capsys):
    results = fig07_08_throughput.run(skewed=True, scale=TINY)
    assert len(results) == 3 * 2 * 1  # designs x workloads x client counts
    assert all(cell.total_ops > 0 for cell in results.values())
    fig07_08_throughput.print_figure(results, skewed=True, scale=TINY)
    assert "Figure 7" in capsys.readouterr().out


def test_fig09(capsys):
    results = fig09_network.run(scale=TINY)
    fig09_network.print_figure(results, TINY)
    out = capsys.readouterr().out
    assert "Figure 9" in out and "GB/s" in out


def test_fig10(capsys):
    results = fig10_datasize.run(scale=TINY)
    assert len(results) == 3 * 2 * 2
    fig10_datasize.print_figure(results, TINY)
    assert "Figure 10" in capsys.readouterr().out


def test_fig11(capsys):
    results = fig11_servers.run(scale=TINY, num_clients=8)
    assert len(results) == 2 * 2 * 2 * 2
    fig11_servers.print_figure(results, TINY)
    assert "Figure 11" in capsys.readouterr().out


def test_fig12(capsys):
    results = fig12_inserts.run(scale=TINY)
    assert len(results) == 3 * 2
    fig12_inserts.print_figure(results, TINY)
    assert "Figure 12" in capsys.readouterr().out


def test_fig13_14(capsys):
    results = fig13_14_latency.run(skewed=False, scale=TINY)
    fig13_14_latency.print_figure(results, skewed=False, scale=TINY)
    out = capsys.readouterr().out
    assert "Figure 14" in out and ("us" in out or "ms" in out)


def test_fig15(capsys):
    results = fig15_colocation.run(scale=TINY, num_clients=8)
    assert len(results) == 2 * 2 * 2
    fig15_colocation.print_figure(results, TINY)
    assert "co-located" in capsys.readouterr().out


def test_a4_caching(capsys):
    results = a4_caching.run(scale=TINY, num_clients=8)
    (plain_a, _), (cached_a, hit_rate) = results[("A", False)], results[("A", True)]
    assert plain_a.total_ops > 0 and cached_a.total_ops > 0
    assert 0 <= hit_rate <= 1
    a4_caching.print_figure(results)
    assert "A.4" in capsys.readouterr().out


def test_ablation_head_nodes(capsys):
    results = ablation_head_nodes.run(scale=TINY, num_clients=8)
    ablation_head_nodes.print_figure(results, TINY)
    assert "head nodes" in capsys.readouterr().out


def test_ablation_srq(capsys):
    results = ablation_srq.run(scale=TINY)
    assert len(results) == 2 * len(TINY.clients)
    ablation_srq.print_figure(results, TINY)
    assert "SRQ" in capsys.readouterr().out


def test_ext_request_skew(capsys):
    results = ext_request_skew.run(scale=TINY, num_clients=8)
    assert len(results) == 4 * 3  # (3 designs + cached FG) x distributions
    ext_request_skew.print_figure(results)
    assert "request skew" in capsys.readouterr().out


def test_ext_caching_strategies(capsys):
    results = ext_caching_strategies.run(scale=TINY, num_clients=8)
    assert len(results) == 2 * len(
        ext_caching_strategies.STRATEGIES
    )  # workloads x strategies
    ext_caching_strategies.print_figure(results, num_clients=8)
    assert "caching strategies" in capsys.readouterr().out


def test_ext_cache_depth(capsys):
    results = ext_cache_depth.run(
        scale=TINY, num_clients=8, write_ratios=(0.0,)
    )
    assert len(results) == len(ext_cache_depth.DEPTHS) * len(
        ext_cache_depth.DISTRIBUTIONS
    )
    assert all(cell.sim_ops_per_s > 0 for cell in results.values())
    payload = ext_cache_depth.results_to_json(results)
    assert set(payload) == {"cells", "speedups"}
    # Self-comparison: every per-cell gate is clean by construction; at
    # this tiny scale only the absolute speedup floor may trip (the tree
    # is too shallow to save 2x in round trips).
    failures = ext_cache_depth.check_against_baseline(results, payload)
    assert all("floor" in failure for failure in failures)
    ext_cache_depth.print_figure(results)
    assert "cache depth" in capsys.readouterr().out


def test_ext_page_size(capsys):
    results = ext_page_size.run(scale=TINY, num_clients=8)
    assert len(results) == 2 * len(ext_page_size.PAGE_SIZES)
    ext_page_size.print_figure(results)
    assert "page-size" in capsys.readouterr().out


def test_ext_engine(capsys):
    scale = ext_engine.EngineScale(
        num_keys=1_500,
        num_memory_servers=4,
        num_clients=8,
        ops_per_client=10,
        reps=1,
    )
    cells = ext_engine.run(scale=scale)
    assert len(cells) == 12  # designs x batching x observability
    assert all(cell.sim_steps > 0 and cell.wall_s > 0 for cell in cells)
    payload = ext_engine.results_to_json(cells)
    assert {
        "workload",
        "cells",
        "wall_steps_per_s",
        "obs_wall_steps_per_s",
        "fine_grained_batched_wall_steps_per_s",
    } <= set(payload)
    # Self-comparison: every deterministic gate is clean by construction;
    # at one rep of ten ops only the wall-noise batched/unbatched ratio
    # may trip.
    failures = ext_engine.check_against_baseline(cells, payload)
    assert all("wall-step throughput" in failure for failure in failures)
    ext_engine.print_figure(cells)
    assert "engine speed" in capsys.readouterr().out


def test_ablation_insert_contention(capsys):
    results = ablation_insert_contention.run(scale=TINY, readers=8, writers=4)
    assert set(results) == {"coarse-grained", "fine-grained", "hybrid"}
    ablation_insert_contention.print_figure(results, 8, 4)
    assert "spinning" in capsys.readouterr().out
