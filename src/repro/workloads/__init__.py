"""YCSB-style workload generation, execution, and measurement."""

from repro.workloads.datagen import (
    Dataset,
    generate_dataset,
    skew_fractions,
    skewed_partitioner,
)
from repro.workloads.distributions import (
    KeyChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    make_chooser,
)
from repro.workloads.degradation import (
    CircuitBreaker,
    DegradationConfig,
    RetryBudget,
)
from repro.workloads.metrics import OpType, RunResult, TenantOutcome
from repro.workloads.openloop import ArrivalProcess, OpenLoopRunner, TenantSpec
from repro.workloads.runner import OpDrawer, WorkloadRunner
from repro.workloads.ycsb import (
    WorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_e,
)

__all__ = [
    "Dataset",
    "generate_dataset",
    "skew_fractions",
    "skewed_partitioner",
    "KeyChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "ZipfianChooser",
    "make_chooser",
    "OpType",
    "RunResult",
    "TenantOutcome",
    "WorkloadRunner",
    "OpenLoopRunner",
    "OpDrawer",
    "ArrivalProcess",
    "TenantSpec",
    "DegradationConfig",
    "RetryBudget",
    "CircuitBreaker",
    "WorkloadSpec",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
    "workload_e",
]
