"""Benchmark target for Figure 15 (Appendix A.3): co-location effects."""

from repro.experiments import fig15_colocation


def test_fig15_colocation(benchmark, run_once, bench_scale):
    results = run_once(fig15_colocation.run, scale=bench_scale, num_clients=80)
    fig15_colocation.print_figure(results, bench_scale)

    gains = {}
    for design in ("fine-grained", "coarse-grained"):
        distributed = results[(design, "A", False)].throughput
        colocated = results[(design, "A", True)].throughput
        gains[design] = colocated / distributed
    benchmark.extra_info["point_colocation_gain"] = gains
    # Paper shape: co-location yields a similar constant-factor gain for
    # both designs (a share of accesses becomes local memory traffic).
    assert gains["fine-grained"] > 1.3
    assert gains["coarse-grained"] > 1.3

    # Paper shape: with co-location, CG has the best absolute point-query
    # throughput. (The paper also reports FG keeping the range-query lead;
    # at our scaled-down range sizes — a few leaves per scan instead of
    # thousands — the RPC's fixed-cost efficiency lets CG keep up, so we
    # only assert the constant-factor gains here; see EXPERIMENTS.md.)
    assert (
        results[("coarse-grained", "A", True)].throughput
        >= results[("fine-grained", "A", True)].throughput * 0.95
    )
    sel = bench_scale.selectivities[-1]
    range_gain = (
        results[("fine-grained", f"B(sel={sel})", True)].throughput
        / results[("fine-grained", f"B(sel={sel})", False)].throughput
    )
    assert range_gain > 1.3
