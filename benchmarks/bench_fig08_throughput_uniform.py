"""Benchmark target for Figure 8: throughput, workloads A+B, uniform data."""

from repro.experiments import fig07_08_throughput


def test_fig08_throughput_uniform(benchmark, run_once, bench_scale):
    results = run_once(fig07_08_throughput.run, skewed=False, scale=bench_scale)
    fig07_08_throughput.print_figure(results, skewed=False, scale=bench_scale)

    low, high = bench_scale.clients[0], bench_scale.clients[-1]
    benchmark.extra_info["point_uniform_high_load"] = {
        design: results[(design, "A", high)].throughput
        for design in ("coarse-grained", "fine-grained", "hybrid")
    }
    # Paper shape (Fig 8a): CG leads under light load...
    assert (
        results[("coarse-grained", "A", low)].throughput
        > results[("fine-grained", "A", low)].throughput
    )
    # ...hybrid leads under high load.
    hybrid = results[("hybrid", "A", high)].throughput
    assert hybrid >= results[("coarse-grained", "A", high)].throughput
    assert hybrid > results[("fine-grained", "A", high)].throughput
