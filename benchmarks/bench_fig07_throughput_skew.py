"""Benchmark target for Figure 7: throughput, workloads A+B, skewed data."""

from repro.experiments import fig07_08_throughput


def test_fig07_throughput_skewed(benchmark, run_once, bench_scale):
    results = run_once(fig07_08_throughput.run, skewed=True, scale=bench_scale)
    fig07_08_throughput.print_figure(results, skewed=True, scale=bench_scale)

    high = bench_scale.clients[-1]
    cg = results[("coarse-grained", "A", high)].throughput
    fg = results[("fine-grained", "A", high)].throughput
    hybrid = results[("hybrid", "A", high)].throughput
    benchmark.extra_info["point_skew_high_load"] = {
        "coarse-grained": cg, "fine-grained": fg, "hybrid": hybrid,
    }
    # Paper shape (Fig 7a): under skew + high load, FG and hybrid beat CG.
    assert fg > cg
    assert hybrid > cg

    sel = bench_scale.selectivities[-1]
    cg_range = results[("coarse-grained", f"B(sel={sel})", high)].throughput
    fg_range = results[("fine-grained", f"B(sel={sel})", high)].throughput
    # Paper shape (Fig 7c): skewed range queries favour FG clearly.
    assert fg_range > 1.3 * cg_range
