"""Extension: flash-crowd overload — admission control vs. collapse.

The paper's closed-loop clients can never push a NAM cluster past
saturation: offered load is bounded by completed load by construction.
This harness opens the loop (docs/overload.md): a two-tenant mix — a
rate-limited *interactive* tenant carrying a p99 SLO and an abusive
*flood* tenant — offers Poisson arrivals against the coarse-grained
design, sweeping **offered load** (steady / surge / 5x flash crowd)
against **admission policy** (none / token-bucket + bounded queues +
bulkhead worker pools).

Per cell: offered/accepted/rejected/shed counts, goodput as a fraction
of the measured closed-loop capacity, accepted-op p99, and the
interactive tenant's SLO attainment. The headline (the ISSUE's
acceptance bar): under a 5x flash crowd the admission-controlled system
keeps accepted-op p99 within ``P99_RATIO_CEILING`` of its own steady
state and goodput above ``GOODPUT_FLOOR`` of capacity, while the
uncontrolled baseline's p99 inflates past ``COLLAPSE_RATIO_FLOOR`` and
the interactive tenant's SLO collapses with it.

Doubles as the overload regression gate: ``--check BASELINE`` compares
goodput per cell against a committed baseline JSON (tolerance
``TOLERANCE``) and re-asserts the headline bars in absolute terms.

Run with ``python -m repro.experiments.ext_overload``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import (
    AdmissionConfig,
    ClusterConfig,
    CpuConfig,
    ObservabilityConfig,
)
from repro.experiments.common import (
    build_index,
    format_rate,
    print_table,
    write_obs_artifacts,
)
from repro.experiments.scale import ExperimentScale
from repro.nam.cluster import Cluster
from repro.workloads import (
    ArrivalProcess,
    DegradationConfig,
    OpenLoopRunner,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
    generate_dataset,
)

__all__ = [
    "OverloadCell",
    "POLICIES",
    "LOADS",
    "run",
    "measure_capacity",
    "results_to_json",
    "check_against_baseline",
    "print_figure",
    "main",
    "P99_RATIO_CEILING",
    "GOODPUT_FLOOR",
    "COLLAPSE_RATIO_FLOOR",
    "SLO_ATTAINMENT_FLOOR",
    "TOLERANCE",
]

#: Under the flash crowd, the admission-controlled accepted-op p99 must
#: stay within this multiple of the same policy's steady-state p99.
P99_RATIO_CEILING = 3.0
#: ... while goodput stays above this fraction of closed-loop capacity.
GOODPUT_FLOOR = 0.70
#: ... and the interactive tenant keeps at least this SLO attainment.
SLO_ATTAINMENT_FLOOR = 0.95
#: The uncontrolled baseline must visibly collapse: its flash-crowd p99
#: inflates past this multiple of its own steady state.
COLLAPSE_RATIO_FLOOR = 10.0
#: Allowed per-cell goodput regression vs the committed baseline.
TOLERANCE = 0.20

#: Offered-load levels as multiples of measured closed-loop capacity.
LOADS: Dict[str, float] = {"steady": 0.6, "surge": 2.0, "flash": 5.0}
POLICIES: Tuple[str, ...] = ("none", "admission")

#: Interactive tenant's p99 SLO target (absolute; the steady-state p99
#: at these scales sits well under it, the uncontrolled flash crowd far
#: above it).
INTERACTIVE_SLO_P99_S = 100e-6
#: Tenant rates as fractions of capacity: interactive offers a constant
#: quarter of capacity; flood's base rate is scaled by the load level's
#: burst multiplier.
INTERACTIVE_FRACTION = 0.25
FLOOD_FRACTION = 0.35
#: Admission policy: flood's aggregate token-bucket allowance (fraction
#: of capacity, split evenly across memory servers).
FLOOD_RATE_LIMIT_FRACTION = 0.5

#: Two RPC workers per memory server: one bulkheaded for the flood
#: tenant under the admission policy, one left in the shared pool.
CORES_PER_SERVER = 2
PROBE_CLIENTS = 64

DEFAULT_SCALE = ExperimentScale(
    num_keys=8_000,
    num_memory_servers=2,
    memory_servers_per_machine=2,
    warmup_s=0.001,
    measure_s=0.004,
)

#: Tiny grid for the CI overload-smoke job.
SMOKE = ExperimentScale(
    num_keys=4_000,
    num_memory_servers=2,
    memory_servers_per_machine=2,
    warmup_s=0.0005,
    measure_s=0.002,
)

SMOKE_LOADS: Tuple[str, ...] = ("steady", "flash")


@dataclass
class OverloadCell:
    """One (policy, load level) open-loop measurement."""

    policy: str
    load: str
    #: Target offered load as a multiple of capacity (from :data:`LOADS`).
    load_multiple: float
    capacity_ops_s: float
    offered_ops: int
    accepted_ops: int
    rejected_ops: int
    shed_ops: int
    errored_ops: int
    goodput_ops_s: float
    accepted_p99_s: float
    interactive_p99_s: float
    interactive_slo_attainment: Optional[float]
    flood_accepted: int
    flood_rejected: int

    @property
    def key(self) -> str:
        return cell_key(self.policy, self.load)

    @property
    def goodput_fraction(self) -> float:
        if self.capacity_ops_s <= 0:
            return 0.0
        return self.goodput_ops_s / self.capacity_ops_s


def cell_key(policy: str, load: str) -> str:
    return f"{policy}/{load}"


def _cluster_config(
    policy: str, capacity: float, scale: ExperimentScale, seed: int
) -> ClusterConfig:
    admission = AdmissionConfig()
    if policy == "admission":
        per_server = (
            FLOOD_RATE_LIMIT_FRACTION * capacity / scale.num_memory_servers
        )
        admission = AdmissionConfig(
            enabled=True,
            max_queue_depth=8,
            tenant_rate_ops={"flood": per_server},
            tenant_burst_ops=32.0,
            bulkhead_workers={"flood": 1},
        )
    return ClusterConfig(
        num_memory_servers=scale.num_memory_servers,
        memory_servers_per_machine=min(
            scale.memory_servers_per_machine, scale.num_memory_servers
        ),
        seed=seed,
        cpu=CpuConfig(cores_per_server=CORES_PER_SERVER),
        admission=admission,
        observability=ObservabilityConfig(enabled=True),
    )


def measure_capacity(scale: ExperimentScale, seed: int) -> float:
    """Closed-loop saturation throughput of the overload cluster shape.

    A closed loop with enough clients drives every RPC worker to 100%
    utilization without unbounded queueing — the paper's own measurement
    mode — so its throughput is the service capacity the open-loop cells
    are calibrated against.
    """
    dataset = generate_dataset(scale.num_keys, scale.gap)
    config = ClusterConfig(
        num_memory_servers=scale.num_memory_servers,
        memory_servers_per_machine=min(
            scale.memory_servers_per_machine, scale.num_memory_servers
        ),
        seed=seed,
        cpu=CpuConfig(cores_per_server=CORES_PER_SERVER),
    )
    cluster = Cluster(config)
    index = build_index(cluster, "coarse-grained", dataset)
    runner = WorkloadRunner(cluster, dataset)
    result = runner.run(
        index,
        WorkloadSpec(name="capacity-probe", point_fraction=1.0),
        num_clients=PROBE_CLIENTS,
        warmup_s=scale.warmup_s,
        measure_s=scale.measure_s,
        seed=seed,
    )
    return result.throughput


def _tenants(capacity: float, load_multiple: float) -> List[TenantSpec]:
    interactive_rate = INTERACTIVE_FRACTION * capacity
    flood_rate = FLOOD_FRACTION * capacity
    flood_multiplier = max(
        1.0, (load_multiple * capacity - interactive_rate) / flood_rate
    )
    if flood_multiplier > 1.0:
        # The burst window covers the whole run: a sustained flash crowd,
        # the regime where open vs closed loop actually differ.
        flood_arrivals = ArrivalProcess(
            rate_ops_per_s=flood_rate,
            burst_multiplier=flood_multiplier,
            burst_start_s=0.0,
            burst_duration_s=1.0,
        )
    else:
        flood_arrivals = ArrivalProcess(rate_ops_per_s=flood_rate)
    return [
        TenantSpec(
            name="interactive",
            workload=WorkloadSpec(name="reads", point_fraction=1.0),
            arrivals=ArrivalProcess(rate_ops_per_s=interactive_rate),
            slo_p99_s=INTERACTIVE_SLO_P99_S,
            degradation=DegradationConfig(),
            max_op_retries=2,
            sessions=16,
        ),
        TenantSpec(
            name="flood",
            # 5% inserts keep the mutating-RPC admission path hot.
            workload=WorkloadSpec(
                name="mixed", point_fraction=0.95, insert_fraction=0.05
            ),
            arrivals=flood_arrivals,
            # The flash crowd does not cooperate: no breaker, no budget —
            # the server-side policy alone must contain it.
            degradation=None,
            max_op_retries=0,
            sessions=32,
        ),
    ]


def _measure_cell(
    policy: str,
    load: str,
    capacity: float,
    scale: ExperimentScale,
    seed: int,
    artifacts: Optional[Path] = None,
) -> OverloadCell:
    dataset = generate_dataset(scale.num_keys, scale.gap)
    cluster = Cluster(_cluster_config(policy, capacity, scale, seed))
    index = build_index(cluster, "coarse-grained", dataset)
    runner = OpenLoopRunner(cluster, dataset)
    load_multiple = LOADS[load]
    result = runner.run(
        index,
        _tenants(capacity, load_multiple),
        warmup_s=scale.warmup_s,
        measure_s=scale.measure_s,
        seed=seed,
    )
    if artifacts is not None:
        write_obs_artifacts(
            result.observability, artifacts, f"overload-{policy}-{load}"
        )
    all_latencies = [
        latency
        for outcome in result.tenants.values()
        for latency in outcome.latencies
    ]
    interactive = result.tenants["interactive"]
    flood = result.tenants["flood"]
    return OverloadCell(
        policy=policy,
        load=load,
        load_multiple=load_multiple,
        capacity_ops_s=capacity,
        offered_ops=result.offered_ops,
        accepted_ops=result.accepted_ops,
        rejected_ops=result.rejected_ops,
        shed_ops=result.shed_ops,
        errored_ops=result.errored_ops,
        goodput_ops_s=result.goodput,
        accepted_p99_s=(
            float(np.percentile(all_latencies, 99)) if all_latencies else 0.0
        ),
        interactive_p99_s=(
            interactive.p99_s if interactive.latencies else 0.0
        ),
        interactive_slo_attainment=interactive.slo_attainment,
        flood_accepted=flood.accepted,
        flood_rejected=flood.rejected,
    )


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    seed: Optional[int] = None,
    loads: Optional[Tuple[str, ...]] = None,
    artifacts: Optional[Path] = None,
) -> Dict[str, OverloadCell]:
    """Measure the policy x offered-load grid; keyed by ``policy/load``."""
    seed = scale.seed if seed is None else seed
    if loads is None:
        loads = tuple(LOADS)
    capacity = measure_capacity(scale, seed)
    results: Dict[str, OverloadCell] = {}
    for policy in POLICIES:
        for load in loads:
            cell = _measure_cell(
                policy, load, capacity, scale, seed, artifacts=artifacts
            )
            results[cell.key] = cell
    return results


def _headline(results: Dict[str, OverloadCell]) -> Dict[str, Dict[str, float]]:
    """Flash-over-steady ratios per policy (the collapse-vs-contained story)."""
    headline: Dict[str, Dict[str, float]] = {}
    for policy in POLICIES:
        steady = results.get(cell_key(policy, "steady"))
        flash = results.get(cell_key(policy, "flash"))
        if steady is None or flash is None:
            continue
        if steady.accepted_p99_s <= 0:
            continue
        entry = {
            "p99_ratio": flash.accepted_p99_s / steady.accepted_p99_s,
            "goodput_fraction": flash.goodput_fraction,
        }
        if flash.interactive_slo_attainment is not None:
            entry["interactive_slo_attainment"] = (
                flash.interactive_slo_attainment
            )
        headline[policy] = entry
    return headline


def results_to_json(results: Dict[str, OverloadCell]) -> Dict:
    """A JSON-serializable snapshot (the BENCH_overload.json payload)."""
    capacity = next(iter(results.values())).capacity_ops_s if results else 0.0
    return {
        "capacity_ops_s": capacity,
        "cells": {key: asdict(cell) for key, cell in results.items()},
        "headline": _headline(results),
    }


def check_against_baseline(
    results: Dict[str, OverloadCell], baseline: Dict
) -> List[str]:
    """Regression failures of *results* vs a committed *baseline* payload.

    Every cell's goodput must stay above ``(1 - TOLERANCE) *`` baseline,
    and the headline bars are re-asserted in absolute terms: admission
    contains the flash crowd (p99 ratio, goodput floor, interactive SLO)
    while the uncontrolled baseline demonstrably collapses.
    """
    failures: List[str] = []
    base_cells = baseline.get("cells", {})
    for key, cell in results.items():
        base = base_cells.get(key)
        if base is None:
            failures.append(f"{key}: missing from baseline")
            continue
        reference = base.get("goodput_ops_s", 0.0)
        if reference > 0 and cell.goodput_ops_s < (1.0 - TOLERANCE) * reference:
            failures.append(
                f"{key}: goodput regressed {cell.goodput_ops_s:.0f} < "
                f"{(1.0 - TOLERANCE) * reference:.0f} "
                f"(baseline {reference:.0f}, tolerance {TOLERANCE:.0%})"
            )
    headline = _headline(results)
    contained = headline.get("admission")
    if contained is None:
        failures.append("admission steady/flash cells missing")
    else:
        if contained["p99_ratio"] > P99_RATIO_CEILING:
            failures.append(
                f"admission/flash: accepted p99 is {contained['p99_ratio']:.1f}x "
                f"steady state, above the {P99_RATIO_CEILING:.1f}x ceiling"
            )
        if contained["goodput_fraction"] < GOODPUT_FLOOR:
            failures.append(
                f"admission/flash: goodput is "
                f"{contained['goodput_fraction']:.0%} of capacity, below the "
                f"{GOODPUT_FLOOR:.0%} floor"
            )
        attainment = contained.get("interactive_slo_attainment")
        if attainment is not None and attainment < SLO_ATTAINMENT_FLOOR:
            failures.append(
                f"admission/flash: interactive SLO attainment {attainment:.2f} "
                f"below the {SLO_ATTAINMENT_FLOOR:.2f} floor"
            )
    collapse = headline.get("none")
    if collapse is None:
        failures.append("uncontrolled steady/flash cells missing")
    elif collapse["p99_ratio"] < COLLAPSE_RATIO_FLOOR:
        failures.append(
            f"none/flash: baseline p99 only inflated "
            f"{collapse['p99_ratio']:.1f}x; the uncontrolled collapse the "
            f"experiment demonstrates needs >= {COLLAPSE_RATIO_FLOOR:.0f}x"
        )
    return failures


def print_figure(results: Dict[str, OverloadCell]) -> None:
    """One table per policy, one row per offered-load level."""
    loads = [
        load for load in LOADS
        if any(cell.load == load for cell in results.values())
    ]
    for policy in POLICIES:
        rows = {}
        for load in loads:
            cell = results.get(cell_key(policy, load))
            if cell is None:
                continue
            attainment = cell.interactive_slo_attainment
            rows[f"{load} ({cell.load_multiple:g}x)"] = [
                f"{cell.offered_ops}",
                format_rate(cell.goodput_ops_s),
                f"{cell.goodput_fraction:.0%}",
                f"{cell.rejected_ops}",
                f"{cell.shed_ops}",
                f"{cell.accepted_p99_s * 1e6:.0f}us",
                f"{attainment:.2f}" if attainment is not None else "-",
            ]
        capacity = next(iter(results.values())).capacity_ops_s
        print_table(
            f"Extension - open-loop overload, policy={policy} "
            f"(coarse-grained, capacity {format_rate(capacity)}/s)",
            ["offered", "goodput", "of cap", "rejected", "shed",
             "p99", "SLO"],
            rows,
            col_header="load",
        )
    headline = _headline(results)
    for policy, entry in headline.items():
        print(
            f"  {policy}: flash p99 = {entry['p99_ratio']:.1f}x steady, "
            f"goodput {entry['goodput_fraction']:.0%} of capacity"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="open-loop flash-crowd sweep + overload regression gate"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI grid (faster)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write results to this file"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="compare against this baseline JSON; exit non-zero on regression",
    )
    parser.add_argument(
        "--update-baseline",
        type=Path,
        default=None,
        help="write this run's numbers as the new baseline",
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="write per-cell flight bundles + Chrome traces into this dir"
        " (for CI failure uploads)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        results = run(
            scale=SMOKE, seed=args.seed, loads=SMOKE_LOADS,
            artifacts=args.artifacts,
        )
    else:
        results = run(seed=args.seed, artifacts=args.artifacts)
    print_figure(results)
    payload = results_to_json(results)
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.update_baseline is not None:
        args.update_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.update_baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {args.update_baseline}")
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(results, baseline)
        for failure in failures:
            print(f"OVERLOAD REGRESSION: {failure}")
        if failures:
            return 1
        headline = _headline(results)
        contained = headline.get("admission", {})
        print(
            f"overload check OK vs {args.check} "
            f"(admission flash p99 {contained.get('p99_ratio', 0):.1f}x steady, "
            f"goodput {contained.get('goodput_fraction', 0):.0%} of capacity)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
