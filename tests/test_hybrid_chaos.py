"""Hybrid-design chaos: stranded leaf locks, crashes, and failover.

The hybrid design has the widest failure surface of the three: a client
crash can strand a one-sided leaf lock (like fine-grained), a memory
server crash takes out both a partition's inner tree (served by RPC) and
a slice of its leaves, and recovery must re-install the traversal
handlers on the promoted backup. These tests target exactly those seams;
:func:`repro.index.verify.verify_index` is the oracle throughout.
"""

from __future__ import annotations

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    FaultPlan,
    HybridIndex,
    RetryConfig,
    ServerCrash,
    verify_index,
)
from repro.btree.pointers import RemotePointer
from repro.workloads import WorkloadRunner, WorkloadSpec, generate_dataset

# Tight lease so steals happen fast; deliberately below the retry budget
# (the config warns about exactly this, which the module filter silences).
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.errors.ConfigurationWarning"
)

LEASE_S = 0.0005

MIXED = WorkloadSpec(
    name="hybrid-chaos-mix",
    point_fraction=0.5,
    range_fraction=0.1,
    insert_fraction=0.3,
    delete_fraction=0.1,
    selectivity=0.005,
)


def _hybrid_cluster(factor=1, num_servers=2, seed=37):
    return Cluster(
        ClusterConfig(
            num_memory_servers=num_servers,
            memory_servers_per_machine=1,
            replication_factor=factor,
            seed=seed,
            retry=RetryConfig(lock_lease_s=LEASE_S),
        )
    )


def _leaf_word(cluster, index, key):
    """(logical server id, region, offset) of the leaf covering *key*."""
    session = index.session(cluster.new_compute_server())
    server_id = index.partitioner.server_for_key(key)
    raw_ptr = cluster.execute(session._traverse(server_id, key))
    pointer = RemotePointer.from_raw(raw_ptr)
    if cluster.replication is not None:
        _host, region = cluster.replication.route(pointer.server_id)
    else:
        region = cluster.memory_server(pointer.server_id).region
    return pointer.server_id, region, pointer.offset


def _run_until_locked(cluster, region, offset, deadline_s=0.01):
    deadline = cluster.now + deadline_s
    while cluster.now < deadline:
        word = region.read_u64(offset)
        if word & 1:
            return word
        cluster.run(until=cluster.now + 1e-7)
    raise AssertionError("leaf never became locked")


def test_hybrid_leaf_lock_steal():
    """A client killed inside a hybrid leaf critical section strands the
    lock; a survivor lease-steals it and completes its insert."""
    cluster = _hybrid_cluster()
    dataset = generate_dataset(500, gap=4)
    index = HybridIndex.build(
        cluster, "idx", dataset.pairs(), key_space=dataset.key_space
    )
    injector = cluster.attach_faults(FaultPlan())
    key = dataset.key_at(13)
    _sid, region, offset = _leaf_word(cluster, index, key)

    victim = cluster.new_compute_server()
    proc = cluster.spawn(index.session(victim).insert(key, 111))
    injector.register_client(victim.server_id, proc)
    word = _run_until_locked(cluster, region, offset)
    assert word >> 48 == victim.server_id + 1  # owner-tagged
    injector.kill_compute_server(victim.server_id)
    assert region.read_u64(offset) & 1  # still locked by the dead client

    survivor = cluster.new_compute_server()
    t0 = cluster.now
    cluster.execute(index.session(survivor).insert(key, 222))
    assert cluster.now - t0 >= LEASE_S
    assert injector.stats["lock_steals"] >= 1
    assert region.read_u64(offset) & 1 == 0

    values = cluster.execute(index.session(survivor).lookup(key))
    assert 222 in values
    report = verify_index(cluster, index)
    assert report.ok, report.violations


def test_hybrid_stranded_lock_survives_failover():
    """The nastiest interleaving: the lock holder dies, then the primary
    hosting the locked leaf dies too. The survivor's traversal RPC fails
    over to the promoted backup — where the stranded lock was mirrored —
    and the lease steal happens on the new primary."""
    cluster = _hybrid_cluster(factor=2, num_servers=3)
    dataset = generate_dataset(600, gap=4)
    index = HybridIndex.build(
        cluster, "idx", dataset.pairs(), key_space=dataset.key_space
    )
    injector = cluster.attach_faults(FaultPlan())
    key = dataset.key_at(41)
    sid, region, offset = _leaf_word(cluster, index, key)

    victim = cluster.new_compute_server()
    proc = cluster.spawn(index.session(victim).insert(key, 111))
    injector.register_client(victim.server_id, proc)
    _run_until_locked(cluster, region, offset)
    injector.kill_compute_server(victim.server_id)

    # Destructively crash the physical host currently serving the leaf's
    # logical server: the locked page survives only on its backup.
    primary_host = cluster.replication.primary_host_id(sid)
    injector.crash_memory_server(primary_host)

    survivor = cluster.new_compute_server()
    cluster.execute(index.session(survivor).insert(key, 222))
    assert cluster.replication.stats["failovers"] >= 1
    assert injector.stats["lock_steals"] >= 1

    # The promoted copy holds the survivor's write, unlocked.
    _host, new_region = cluster.replication.route(sid)
    assert new_region is not region
    values = cluster.execute(index.session(survivor).lookup(key))
    assert 222 in values
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    cluster.replication.assert_replicas_converged()


def test_hybrid_chaos_workload_with_replication():
    """Mixed workload under drops/delays/duplicates plus a destructive
    crash/restart at factor 2: typed errors only, verifier clean, replicas
    byte-converged."""
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=3,
            memory_servers_per_machine=1,
            replication_factor=2,
            seed=43,
        )
    )
    dataset = generate_dataset(600, gap=4)
    index = HybridIndex.build(
        cluster, "idx", dataset.pairs(), key_space=dataset.key_space
    )
    injector = cluster.attach_faults(
        FaultPlan(
            seed=13,
            drop_probability=0.02,
            delay_probability=0.05,
            delay_s=30e-6,
            duplicate_probability=0.02,
            server_crashes=(ServerCrash(1, at_s=0.004, down_for_s=0.002),),
        )
    )
    runner = WorkloadRunner(cluster, dataset, clients_per_compute_server=8)
    result = runner.run(
        index, MIXED, num_clients=8, warmup_s=0.001, measure_s=0.009, seed=17
    )
    assert result.total_ops > 0
    assert injector.stats["server_crashes"] == 1
    assert injector.stats["server_restarts"] == 1
    assert all(name == "RetriesExhaustedError" for name in result.errors)

    injector.quiesce()
    session = index.session(cluster.new_compute_server())
    scan = cluster.execute(session.range_scan(0, dataset.key_space * 2))
    keys = [key for key, _value in scan]
    assert keys == sorted(keys)
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    cluster.replication.assert_replicas_converged()
