"""Multiple indexes coexisting on one cluster."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    CoarseGrainedIndex,
    FineGrainedIndex,
    HybridIndex,
)
from repro.workloads import generate_dataset


@pytest.fixture
def rig():
    cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=13))
    compute = cluster.new_compute_server()
    return cluster, compute


def test_two_indexes_of_same_design_are_isolated(rig):
    cluster, compute = rig
    a = CoarseGrainedIndex.build(cluster, "a", [(1, 10), (2, 20)], key_space=100)
    b = CoarseGrainedIndex.build(cluster, "b", [(1, 99)], key_space=100)
    sa, sb = a.session(compute), b.session(compute)
    assert cluster.execute(sa.lookup(1)) == [10]
    assert cluster.execute(sb.lookup(1)) == [99]
    cluster.execute(sa.insert(3, 30))
    assert cluster.execute(sb.lookup(3)) == []


def test_mixed_designs_share_the_cluster(rig):
    cluster, compute = rig
    dataset = generate_dataset(500, gap=4)
    cg = CoarseGrainedIndex.build(
        cluster, "cg", dataset.pairs(), key_space=dataset.key_space
    )
    fg = FineGrainedIndex.build(cluster, "fg", dataset.pairs())
    hy = HybridIndex.build(
        cluster, "hy", dataset.pairs(), key_space=dataset.key_space
    )
    sessions = [idx.session(compute) for idx in (cg, fg, hy)]
    for session in sessions:
        assert cluster.execute(session.lookup(dataset.key_at(42))) == [42]
    # Writes to one design do not leak into the others.
    cluster.execute(sessions[1].insert(dataset.key_at(42) + 1, 777))
    assert cluster.execute(sessions[0].lookup(dataset.key_at(42) + 1)) == []
    assert cluster.execute(sessions[2].lookup(dataset.key_at(42) + 1)) == []
    assert cluster.execute(sessions[1].lookup(dataset.key_at(42) + 1)) == [777]
    assert sorted(cluster.catalog.names()) == ["cg", "fg", "hy"]


def test_concurrent_traffic_across_indexes(rig):
    cluster, compute = rig
    dataset = generate_dataset(300, gap=4)
    cg = CoarseGrainedIndex.build(
        cluster, "cg", dataset.pairs(), key_space=dataset.key_space
    )
    fg = FineGrainedIndex.build(cluster, "fg", dataset.pairs())

    def worker(index, offset):
        session = index.session(compute)
        for i in range(50):
            yield from session.insert(dataset.key_at(i * 3 % 300) + offset, i)
            yield from session.lookup(dataset.key_at(i))

    procs = [
        cluster.spawn(worker(cg, 1)),
        cluster.spawn(worker(fg, 2)),
        cluster.spawn(worker(cg, 3)),
        cluster.spawn(worker(fg, 1)),
    ]
    cluster.sim.run_until_complete(cluster.sim.all_of(procs))
    total_cg = cluster.execute(cg.session(compute).range_scan(0, dataset.key_space))
    total_fg = cluster.execute(fg.session(compute).range_scan(0, dataset.key_space))
    assert len(total_cg) == 300 + 100
    assert len(total_fg) == 300 + 100
