"""Model-based and adversarial tests at the distributed-index level."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, ClusterConfig, FineGrainedIndex, HybridIndex
from repro.errors import TimeoutError_
from repro.rdma.faults import FaultPlan
from repro.workloads import generate_dataset


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete", "lookup", "scan"]),
            st.integers(min_value=0, max_value=120),
        ),
        max_size=60,
    ),
    design=st.sampled_from(["fine-grained", "hybrid"]),
)
def test_distributed_index_matches_sorted_multimap(ops, design):
    """Random op sequences through the full RDMA stack behave like a
    sorted multimap (same model as the in-memory algorithm test, but
    exercising QPs, RPC handlers, allocators and remote pointers)."""
    cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=1))
    dataset = generate_dataset(40, gap=4)
    if design == "fine-grained":
        index = FineGrainedIndex.build(cluster, "prop", dataset.pairs())
    else:
        index = HybridIndex.build(
            cluster, "prop", dataset.pairs(), key_space=dataset.key_space
        )
    session = index.session(cluster.new_compute_server())

    model = {key: [ordinal] for key, ordinal in dataset.pairs()}
    seq = 1000
    for op, key in ops:
        if op == "insert":
            cluster.execute(session.insert(key, seq))
            model.setdefault(key, []).append(seq)
            seq += 1
        elif op == "update":
            found = cluster.execute(session.update(key, seq))
            assert found == bool(model.get(key))
            if model.get(key):
                model[key][0] = seq
            seq += 1
        elif op == "delete":
            found = cluster.execute(session.delete(key))
            assert found == bool(model.get(key))
            if model.get(key):
                model[key].pop(0)
        elif op == "lookup":
            got = sorted(cluster.execute(session.lookup(key)))
            assert got == sorted(model.get(key, []))
        else:
            low, high = sorted((key, key + 40))
            got = cluster.execute(session.range_scan(low, high))
            expected = sorted(
                (k, payload)
                for k, payloads in model.items()
                if low <= k < high
                for payload in payloads
            )
            assert sorted(got) == expected


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete", "lookup", "scan"]),
            st.integers(min_value=0, max_value=120),
        ),
        max_size=40,
    ),
    plan_seed=st.integers(min_value=0, max_value=10_000),
)
def test_index_under_faults_matches_uncertainty_oracle(ops, plan_seed):
    """Random op sequences with injected message faults, against an oracle
    that tracks *uncertainty*.

    A faulted operation raises a typed error with its outcome unknown —
    the transport applies effects at most once, so each attempted op was
    applied zero or one times. The oracle therefore keeps, per key, the
    set of values ``certain``ly present and the set of values that ``may``
    be present; every observed state must lie between the two bounds, and
    any op touching a key under uncertainty widens its bounds instead of
    asserting exactly.
    """
    cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=2))
    dataset = generate_dataset(40, gap=4)
    index = FineGrainedIndex.build(cluster, "prop", dataset.pairs())
    injector = cluster.attach_faults(
        FaultPlan(
            seed=plan_seed,
            drop_probability=0.03,
            delay_probability=0.05,
            duplicate_probability=0.02,
        )
    )
    session = index.session(cluster.new_compute_server())

    certain = {key: {value} for key, value in dataset.pairs()}
    maybe = {key: set() for key, value in dataset.pairs()}

    def bounds(key):
        lo = certain.get(key, set())
        return lo, lo | maybe.get(key, set())

    seq = 1000
    for op, key in ops:
        lo, hi = bounds(key)
        try:
            if op == "insert":
                cluster.execute(session.insert(key, seq))
                certain.setdefault(key, set()).add(seq)
                maybe.setdefault(key, set())
            elif op == "update":
                found = cluster.execute(session.update(key, seq))
                # `found` is only fully determined when the key's presence
                # is certain either way.
                if lo:
                    assert found
                elif not hi:
                    assert not found
                if found:
                    # One value (which one is unknowable under faults)
                    # became seq; everything else is now only "maybe".
                    maybe[key] = (lo | maybe.get(key, set())) - {seq}
                    certain[key] = {seq}
            elif op == "delete":
                found = cluster.execute(session.delete(key))
                if lo:
                    assert found
                elif not hi:
                    assert not found
                if found:
                    # One unknowable value was removed.
                    maybe[key] = lo | maybe.get(key, set())
                    certain[key] = set()
            elif op == "lookup":
                got = set(cluster.execute(session.lookup(key)))
                assert lo <= got <= hi
            else:
                low, high = sorted((key, key + 40))
                got = cluster.execute(session.range_scan(low, high))
                by_key = {}
                for k, v in got:
                    by_key.setdefault(k, set()).add(v)
                for k in set(certain) | set(by_key):
                    if low <= k < high:
                        k_lo, k_hi = bounds(k)
                        assert k_lo <= by_key.get(k, set()) <= k_hi
        except TimeoutError_:
            # Outcome unknown: the op was applied zero or one times.
            # Widen the touched key's bounds accordingly.
            if op == "insert":
                maybe.setdefault(key, set()).add(seq)
                certain.setdefault(key, set())
            elif op == "update":
                if hi:
                    maybe[key] = lo | maybe[key] | {seq}
                    certain[key] = set()
            elif op == "delete":
                if hi and key in certain:
                    maybe[key] |= certain[key]
                    certain[key] = set()
        if op in ("insert", "update"):
            seq += 1

    # Quiesce and verify the final state lies within the oracle's bounds,
    # then check structural invariants survived the chaos.
    injector.quiesce()
    scan = cluster.execute(session.range_scan(0, dataset.key_space + 200))
    by_key = {}
    for k, v in scan:
        by_key.setdefault(k, set()).add(v)
    for k in set(certain) | set(by_key):
        k_lo, k_hi = bounds(k)
        assert k_lo <= by_key.get(k, set()) <= k_hi
    cluster.execute(
        index.tree_for(cluster.new_compute_server()).validate()
    )


class TestStalePointers:
    """The hybrid's traversal RPC may return a leaf pointer that is stale
    by the time the client uses it; move-right must recover."""

    @pytest.fixture
    def rig(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=4))
        dataset = generate_dataset(200, gap=4)
        index = HybridIndex.build(
            cluster, "idx", dataset.pairs(), key_space=dataset.key_space
        )
        session = index.session(cluster.new_compute_server())
        return cluster, dataset, index, session

    def test_leaf_ops_through_stale_pointer(self, rig):
        cluster, dataset, index, session = rig
        # Capture a leaf pointer, then split that leaf repeatedly.
        server_id = index.partitioner.server_for_key(0)
        stale_ptr = cluster.execute(session._traverse(server_id, 0))
        for i in range(120):
            cluster.execute(session.insert(1 + (i % 7), 5000 + i))
        # Directly drive leaf-entry operations through the stale pointer:
        # they must move right to the correct (post-split) leaves.
        # Keys must stay inside partition 0: leaf chains are per-partition.
        got = cluster.execute(session._leaves.lookup_at(stale_ptr, 200))
        assert got == [50]
        pairs = cluster.execute(session._leaves.scan_at(stale_ptr, 196, 212))
        assert [k for k, _ in pairs] == [196, 200, 204, 208]

    def test_insert_at_through_stale_pointer(self, rig):
        cluster, dataset, index, session = rig
        server_id = index.partitioner.server_for_key(0)
        stale_ptr = cluster.execute(session._traverse(server_id, 0))
        for i in range(120):
            cluster.execute(session.insert(1 + (i % 5), 5000 + i))
        done = cluster.execute(session._leaves.insert_at(stale_ptr, 399, 777))
        assert done
        assert 777 in cluster.execute(session.lookup(399))


def test_concurrent_mixed_ops_preserve_invariants():
    """A heavier randomized concurrency run, validated structurally."""
    cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=8))
    dataset = generate_dataset(1_000, gap=8)
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    compute = cluster.new_compute_server()

    def client(cid):
        rng = np.random.default_rng(cid)
        session = index.session(compute)
        for i in range(60):
            key = int(rng.integers(0, dataset.key_space))
            kind = rng.random()
            if kind < 0.4:
                yield from session.insert(key, cid * 1000 + i)
            elif kind < 0.55:
                yield from session.delete(key)
            elif kind < 0.7:
                yield from session.update(key, cid * 1000 + i)
            elif kind < 0.9:
                yield from session.lookup(key)
            else:
                yield from session.range_scan(key, key + 200)

    procs = [cluster.spawn(client(cid)) for cid in range(24)]
    cluster.sim.run_until_complete(cluster.sim.all_of(procs))
    stats = cluster.execute(index.tree_for(compute).validate())
    assert stats["entries"] > dataset.num_keys / 2
    assert stats["height"] >= 2
