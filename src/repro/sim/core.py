"""A small discrete-event simulation kernel.

The kernel follows the well-known *process interaction* style (as popularized
by SimPy): model code is written as Python generators that ``yield`` events;
the simulator advances virtual time, fires events, and resumes the waiting
generators. The kernel is deliberately minimal — just what the RDMA fabric
and NAM cluster models need:

* :class:`Event` — a one-shot occurrence carrying a value or an exception.
* :class:`Timeout` — an event that fires after a virtual-time delay.
* :class:`Process` — wraps a generator; itself an event that fires when the
  generator returns (its value is the generator's return value).
* :class:`Condition` — ``all_of`` / ``any_of`` composition, used e.g. for
  head-node prefetching where several RDMA READs are issued in parallel.
* :class:`Simulator` — the event loop and virtual clock.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotonically increasing sequence number breaks ties), so a seeded run is
fully reproducible.

Schedule control: a :class:`Simulator` optionally carries a *scheduler* —
any object with a ``choose(at, ready)`` method and an optional ``window``
attribute (virtual seconds, default 0). Whenever two or more events are
ready within ``window`` of the earliest queued event, the kernel hands the
scheduler the ready list (in ``(time, sequence)`` order) and fires the
entry whose index it returns; the rest stay queued and are offered again.
Choosing a later entry *defers* the earlier ones — they fire after it, at
an unchanged virtual timestamp (the clock never runs backwards; deferred
events model scheduling jitter the fabric is allowed to exhibit). Nothing
ever fires early, and an event is only ever queued once its causes have
fired, so causal chains are preserved. With no scheduler attached (the
default) the behavior is byte-identical to the plain heap order, and a
scheduler with ``window == 0`` that returns ``0`` from ``choose``
reproduces it. This is the hook the namsan schedule explorer
(:mod:`repro.analysis.namsan.explore`) uses to enumerate interleavings of
concurrent client processes at synchronization points.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Simulator",
]

#: Type alias for model code: a generator that yields events.
ProcessGenerator = Generator["Event", Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail`, after which the simulator fires its callbacks at the
    current virtual time. Processes that ``yield`` a pending event are
    suspended until it fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_is_error", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._is_error = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and not self._is_error

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._value = value
        self.sim._queue_fire(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, which will be re-raised in
        every process waiting on it."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._value = exception
        self._is_error = True
        self.sim._queue_fire(self)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)
        if self._is_error and not self._defused:
            # An un-waited-for failure must not pass silently.
            raise self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event fires (immediately if fired)."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` virtual seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._value = value
        self.sim._queue_fire(self, delay)


class Process(Event):
    """A running model process; fires when its generator returns.

    The process drives its generator by sending each yielded event's value
    back in (or throwing the event's exception). The generator's ``return``
    value becomes the process event's value, so processes compose: one
    process may ``yield`` another and receive its result.
    """

    __slots__ = ("_generator", "_killed", "span")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator) -> None:
        super().__init__(sim)
        self._generator = generator
        self._killed = False
        #: Observability attribution: the deepest open span of the
        #: operation this process works for, or None. Inherited from the
        #: spawning process, so fan-out sub-processes (parallel reads,
        #: batch chunks) report into their operation's span tree. The
        #: kernel never reads this — it only carries it.
        parent = sim._active
        self.span = parent.span if parent is not None else None
        # Kick the process off at the current instant.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    def kill(self) -> None:
        """Abandon the process at its current suspension point.

        Models a crash: the generator is closed (``GeneratorExit`` is
        raised at its current ``yield``, so ``finally`` blocks still run),
        no further model effects happen, and the process event fires with
        ``None`` so joins (``all_of``) on it do not deadlock. Killing a
        completed or already-killed process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        self._generator.close()
        self.succeed(None)

    def _resume(self, fired: Event) -> None:
        if self._killed:
            # A crash left this callback registered on an in-flight event;
            # swallow the wake-up (and defuse failures aimed at a corpse).
            if fired._is_error:
                fired._defused = True
            return
        # While the generator runs, this process is the simulator's active
        # process — the anchor observability uses to attribute events
        # (verbs, span steps) to the operation being executed.
        sim = self.sim
        previous = sim._active
        sim._active = self
        try:
            while True:
                try:
                    if fired._is_error:
                        fired._defused = True
                        target = self._generator.throw(fired.value)
                    else:
                        target = self._generator.send(fired.value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # model code raised
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    self.fail(
                        SimulationError(
                            f"process yielded {target!r}, which is not an Event"
                        )
                    )
                    return
                if target.callbacks is None:
                    # Already fired: loop and resume immediately without
                    # recursing (keeps deep chains iterative).
                    fired = target
                    continue
                target.add_callback(self._resume)
                return
        finally:
            sim._active = previous


class Condition(Event):
    """Composite event over several child events.

    With ``wait_all=True`` it fires once every child has fired (value: list
    of child values, in the original order). With ``wait_all=False`` it
    fires as soon as any child fires (value: that child's value). A failing
    child fails the condition.
    """

    __slots__ = ("_events", "_wait_all", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event], wait_all: bool) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._wait_all = wait_all
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([] if wait_all else None)
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if child._is_error:
                child._defused = True
            return
        if child._is_error:
            child._defused = True
            self.fail(child.value)
            return
        self._remaining -= 1
        if not self._wait_all:
            self.succeed(child.value)
        elif self._remaining == 0:
            self.succeed([event.value for event in self._events])


class Simulator:
    """The event loop and virtual clock.

    Typical use::

        sim = Simulator()

        def model():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(model())
        sim.run()
        assert proc.value == "done" and sim.now == 1.0
    """

    def __init__(self, scheduler: Optional[Any] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Any] = []
        self._sequence = 0
        #: Optional tie-breaking policy: an object with
        #: ``choose(at: float, ready: List[(at, seq, Event)]) -> int``,
        #: consulted whenever >= 2 events are ready at the same instant.
        #: ``ready`` is sorted by sequence number; index 0 reproduces the
        #: default order. May be attached/detached at any point between
        #: events (the explorer attaches it only around the concurrent
        #: phase of a scenario). None = plain deterministic heap order.
        self.scheduler = scheduler
        #: The :class:`Process` currently driving its generator, or None
        #: (between events, or while firing non-process callbacks). Spawned
        #: processes inherit their ``span`` from it; observability reads it
        #: to attribute verbs to operations. Purely passive bookkeeping —
        #: it never influences scheduling.
        self._active: Optional[Process] = None

    # -- event factories ---------------------------------------------------

    @property
    def events_scheduled(self) -> int:
        """Total events queued so far — the simulator's work counter.

        Dividing it by the wall-clock seconds a run took gives the
        engine's events/s rate, the metric the batching benchmark uses to
        detect host-side (non-simulated-time) regressions.
        """
        return self._sequence

    def event(self) -> Event:
        """A fresh untriggered event (a mailbox another process can fire)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start *generator* as a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event firing once all *events* fired; value is their value list."""
        return Condition(self, events, wait_all=True)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event firing once any of *events* fired."""
        return Condition(self, events, wait_all=False)

    # -- scheduling & the loop ---------------------------------------------

    def _queue_fire(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _pop_choice(self, at: float, until: Optional[float] = None) -> Any:
        """Pop the next entry to fire, letting the attached scheduler pick
        among all entries ready within its ``window`` of the earliest one
        (never reaching past *until*). The entries not chosen are pushed
        back and offered again at the next step, so one ``choose`` call
        resolves one firing, not the whole group."""
        heap = self._heap
        limit = at + getattr(self.scheduler, "window", 0.0)
        if until is not None and limit > until:
            limit = until
        ready = [heapq.heappop(heap)]
        while heap and heap[0][0] <= limit:
            ready.append(heapq.heappop(heap))
        if len(ready) > 1:
            index = self.scheduler.choose(at, ready)
            if not 0 <= index < len(ready):
                index = 0
        else:
            index = 0
        chosen = ready.pop(index)
        for entry in ready:
            heapq.heappush(heap, entry)
        return chosen

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock passes *until*.

        When stopped by *until*, the clock is set exactly to *until* and any
        events scheduled later stay queued (``run`` may be called again).
        """
        heap = self._heap
        while heap:
            at, _seq, event = heap[0]
            if until is not None and at > until:
                self.now = until
                return
            if self.scheduler is None:
                heapq.heappop(heap)
                self.now = at
            else:
                at, _seq, event = self._pop_choice(at, until)
                # A deferred entry may carry a timestamp the clock already
                # passed; it fires late, the clock never runs backwards.
                self.now = max(self.now, at)
            event._fire()
        if until is not None and until > self.now:
            self.now = until

    def run_until_complete(self, target: Event) -> Any:
        """Run until *target* fires and return its value.

        Raises :class:`SimulationError` if the queue drains first (a
        deadlock in model code), or re-raises the event's exception if it
        failed.
        """
        heap = self._heap
        while not target.triggered:
            if not heap:
                raise SimulationError(
                    "event queue drained before the awaited event fired "
                    "(model deadlock?)"
                )
            if self.scheduler is None:
                at, _seq, event = heapq.heappop(heap)
                self.now = at
            else:
                at, _seq, event = self._pop_choice(heap[0][0])
                self.now = max(self.now, at)
            event._fire()
        if target._is_error:
            target._defused = True
            raise target.value
        return target.value
