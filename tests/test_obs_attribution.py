"""Critical-path attribution, time-series telemetry and the flight recorder.

The PR's acceptance tests:

* **Exact reconciliation** — for every retained span of a real workload
  run, the segment decomposition sums to the span's duration to float
  precision, across all three traversal designs, with doorbell batching,
  under injected faults (retry backoff gets its own segment) and under
  admission rejection (the bounced round trip gets its own segment);
* **Time series** — per-server ring-buffer series are sampled on the sim
  clock cadence, bounded, and carried in the snapshot;
* **Flight recorder** — an induced crash under open-loop overload leaves
  dump bundles containing the fault event and the triggering op's
  attributed span, and the ``report`` CLI renders them;
* **Report CLI** — ``python -m repro.obs report`` renders a top-K
  breakdown and a p50-vs-p99 attribution diff, and round-trips via
  ``--json``.
"""

from __future__ import annotations

import json

import pytest

from repro import Cluster, ClusterConfig
from repro.config import AdmissionConfig, CpuConfig, ObservabilityConfig
from repro.experiments.common import build_index
from repro.obs import SEGMENTS, attribute_span, attribute_span_dict
from repro.obs.attribution import attribute_intervals
from repro.rdma.faults import FaultPlan, ServerCrash
from repro.workloads import (
    ArrivalProcess,
    OpenLoopRunner,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
    generate_dataset,
)

DESIGNS = ("coarse-grained", "fine-grained", "hybrid")

MIX = WorkloadSpec(
    name="attr-mix",
    point_fraction=0.6,
    range_fraction=0.1,
    insert_fraction=0.3,
    selectivity=0.005,
)


def obs_config(**kwargs):
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("sample_every", 1)
    return ObservabilityConfig(**kwargs)


def fresh_cluster(observability, seed=23, **config_kwargs):
    return Cluster(
        ClusterConfig(
            num_memory_servers=2,
            seed=seed,
            observability=observability,
            **config_kwargs,
        )
    )


def run_closed(cluster, design, spec=MIX, *, num_keys=400, clients=6,
               measure_s=0.002, seed=29):
    dataset = generate_dataset(num_keys, gap=4)
    index = build_index(cluster, design, dataset)
    runner = WorkloadRunner(cluster, dataset, clients_per_compute_server=6)
    return runner.run(
        index, spec, num_clients=clients, warmup_s=0.0005,
        measure_s=measure_s, seed=seed,
    )


def retained_spans(cluster):
    seen = set()
    spans = []
    for span in list(cluster.obs.sampled_spans) + list(cluster.obs.slow_spans):
        if span.op_id in seen:
            continue
        seen.add(span.op_id)
        spans.append(span)
    return spans


def assert_reconciles(attribution, duration):
    """The invariant: segments are non-negative, cover the whole taxonomy,
    and sum to the duration to float precision."""
    assert set(attribution) == set(SEGMENTS)
    for label, seconds in attribution.items():
        assert seconds >= 0.0, f"negative {label}: {seconds}"
    assert sum(attribution.values()) == pytest.approx(
        duration, rel=1e-9, abs=1e-15
    )


class TestAttributeIntervals:
    def test_empty_cover_is_all_client_think(self):
        out = attribute_intervals(1.0, 3.0, [])
        assert out["client_think"] == 2.0
        assert sum(out.values()) == 2.0

    def test_zero_duration_is_all_zero(self):
        out = attribute_intervals(1.0, 1.0, [("network_flight", 0.0, 9.0)])
        assert all(v == 0.0 for v in out.values())

    def test_higher_priority_wins_overlap(self):
        out = attribute_intervals(
            0.0, 10.0,
            [("network_flight", 0.0, 10.0), ("lock_wait", 2.0, 5.0)],
        )
        assert out["lock_wait"] == pytest.approx(3.0)
        assert out["network_flight"] == pytest.approx(7.0)
        assert out["client_think"] == 0.0
        assert_reconciles(out, 10.0)

    def test_intervals_clipped_to_op_window(self):
        out = attribute_intervals(
            2.0, 4.0, [("server_cpu", 0.0, 3.0), ("nic_queue", 3.5, 9.0)]
        )
        assert out["server_cpu"] == pytest.approx(1.0)
        assert out["nic_queue"] == pytest.approx(0.5)
        assert out["client_think"] == pytest.approx(0.5)
        assert_reconciles(out, 2.0)

    def test_unknown_and_residual_labels_ignored(self):
        out = attribute_intervals(
            0.0, 1.0,
            [("bogus", 0.0, 1.0), ("client_think", 0.0, 1.0)],
        )
        # Neither an unknown label nor an explicit client_think stamp may
        # charge anything; the residual rule owns client_think.
        assert out["client_think"] == 1.0

    def test_adjacent_and_duplicate_edges(self):
        out = attribute_intervals(
            0.0, 4.0,
            [
                ("server_rpc_queue", 0.0, 1.0),
                ("server_cpu", 1.0, 2.0),
                ("server_cpu", 1.0, 2.0),
                ("network_flight", 2.0, 4.0),
            ],
        )
        assert out["server_rpc_queue"] == pytest.approx(1.0)
        assert out["server_cpu"] == pytest.approx(1.0)
        assert out["network_flight"] == pytest.approx(2.0)
        assert_reconciles(out, 4.0)

    def test_admission_reject_outranks_everything(self):
        out = attribute_intervals(
            0.0, 1.0,
            [
                ("admission_reject", 0.0, 1.0),
                ("client_backoff", 0.0, 1.0),
                ("network_flight", 0.0, 1.0),
            ],
        )
        assert out["admission_reject"] == 1.0
        assert sum(out.values()) == 1.0


class TestReconciliationAcrossDesigns:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_every_retained_span_reconciles(self, design):
        cluster = fresh_cluster(obs_config())
        result = run_closed(cluster, design)
        assert result.total_ops > 0
        spans = retained_spans(cluster)
        assert spans
        for span in spans:
            assert span.finished_at is not None
            assert_reconciles(
                attribute_span(span), span.finished_at - span.started_at
            )

    def test_rpc_designs_attribute_server_time(self):
        """Coarse-grained traversals run on the server: the population must
        show server CPU time, and it must come from the worker stamps."""
        cluster = fresh_cluster(obs_config())
        run_closed(cluster, "coarse-grained")
        total = {label: 0.0 for label in SEGMENTS}
        for span in retained_spans(cluster):
            for label, seconds in attribute_span(span).items():
                total[label] += seconds
        assert total["server_cpu"] > 0.0
        assert total["network_flight"] > 0.0

    def test_one_sided_design_attributes_wire_time(self):
        """Fine-grained traversals are pure one-sided reads: no server CPU
        or RPC queueing may ever be attributed."""
        cluster = fresh_cluster(obs_config())
        run_closed(cluster, "fine-grained")
        total = {label: 0.0 for label in SEGMENTS}
        for span in retained_spans(cluster):
            for label, seconds in attribute_span(span).items():
                total[label] += seconds
        assert total["network_flight"] > 0.0
        assert total["server_cpu"] == 0.0
        assert total["server_rpc_queue"] == 0.0

    def test_reconciles_with_doorbell_batching(self):
        """Scan-heavy fine-grained runs exercise the prefetch fan-out
        (VerbBatch) path; batched verb windows must still reconcile."""
        from repro.config import TreeConfig

        scans = WorkloadSpec(
            name="attr-scan", range_fraction=0.7, insert_fraction=0.3,
            selectivity=0.15,
        )
        cluster = fresh_cluster(
            obs_config(),
            # Head-node chains + a deep prefetch window give range scans
            # the fan-out shape doorbell batching exists for.
            tree=TreeConfig(
                page_size=512, head_node_interval=24, prefetch_window=24
            ),
        )
        run_closed(cluster, "fine-grained", scans)
        spans = retained_spans(cluster)
        assert any(
            event.batch_id is not None
            for span in spans
            for node in span.iter_spans()
            for event in node.verbs
        ), "expected at least one batched verb in the retained spans"
        for span in spans:
            assert_reconciles(
                attribute_span(span), span.finished_at - span.started_at
            )

    def test_faulted_retries_attribute_client_backoff(self):
        """Injected drops force verb retries; the timeout-detection and
        backoff windows must surface as client_backoff, and every span —
        including the faulted ones — must still reconcile."""
        cluster = fresh_cluster(obs_config())
        cluster.attach_faults(FaultPlan(seed=97, drop_probability=0.05))
        result = run_closed(cluster, "fine-grained")
        assert result.retries > 0
        backoff = 0.0
        for span in retained_spans(cluster):
            attribution = attribute_span(span)
            assert_reconciles(
                attribution, span.finished_at - span.started_at
            )
            backoff += attribution["client_backoff"]
        assert backoff > 0.0

    def test_admission_rejection_attributes_its_own_segment(self):
        """An op bounced by the token bucket spends its whole round trip in
        admission_reject (the segment outranks the wire time beneath)."""
        cluster = fresh_cluster(
            obs_config(),
            admission=AdmissionConfig(
                enabled=True,
                tenant_rate_ops={"app": 10_000.0},
                tenant_burst_ops=4.0,
            ),
            cpu=CpuConfig(cores_per_server=2),
        )
        dataset = generate_dataset(400, gap=4)
        index = build_index(cluster, "coarse-grained", dataset)
        runner = OpenLoopRunner(cluster, dataset)
        tenant = TenantSpec(
            name="app",
            workload=WorkloadSpec(name="over", point_fraction=1.0),
            arrivals=ArrivalProcess(rate_ops_per_s=200_000.0),
            max_op_retries=1,
            sessions=8,
        )
        result = runner.run(
            index, [tenant], warmup_s=0.0005, measure_s=0.002, seed=31
        )
        assert result.rejected_ops > 0
        rejected_time = 0.0
        for span in retained_spans(cluster):
            attribution = attribute_span(span)
            assert_reconciles(
                attribution,
                (span.finished_at or span.started_at) - span.started_at,
            )
            rejected_time += attribution["admission_reject"]
        assert rejected_time > 0.0


class TestTimeSeries:
    def test_cadence_sampling_bounds_and_order(self):
        cluster = fresh_cluster(
            obs_config(timeseries_cadence_s=0.0002, timeseries_points=16)
        )
        result = run_closed(cluster, "coarse-grained", measure_s=0.003)
        series = result.observability["timeseries"]
        assert series, "cadence was set but no series were sampled"
        names = {entry["name"] for entry in series}
        assert {
            "nic_tx_backlog_seconds",
            "rpc_queue_len",
            "worker_occupancy",
            "server_heat_ops",
        } <= names
        for entry in series:
            points = entry["points"]
            assert 0 < len(points) <= 16
            times = [t for t, _v in points]
            assert times == sorted(times)
            assert "server" in entry["labels"]

    def test_no_cadence_no_series(self):
        cluster = fresh_cluster(obs_config())
        result = run_closed(cluster, "coarse-grained")
        assert result.observability["timeseries"] == []


class TestFlightRecorder:
    def _crash_run(self):
        cluster = fresh_cluster(
            obs_config(
                sample_every=4,
                timeseries_cadence_s=0.0005,
                flight_ring=32,
                max_flight_dumps=8,
            ),
            replication_factor=2,
            cpu=CpuConfig(cores_per_server=2),
        )
        cluster.attach_faults(
            FaultPlan(
                seed=11,
                server_crashes=(
                    ServerCrash(1, at_s=0.0015, down_for_s=0.002),
                ),
            )
        )
        dataset = generate_dataset(400, gap=4)
        index = build_index(cluster, "coarse-grained", dataset)
        runner = OpenLoopRunner(cluster, dataset)
        tenant = TenantSpec(
            name="app",
            workload=WorkloadSpec(name="crash", point_fraction=0.8,
                                  insert_fraction=0.2),
            arrivals=ArrivalProcess(rate_ops_per_s=150_000.0),
            slo_p99_s=100e-6,
            max_op_retries=1,
            sessions=8,
        )
        result = runner.run(
            index, [tenant], warmup_s=0.0005, measure_s=0.004, seed=13
        )
        return cluster, result

    def test_induced_fault_under_overload_dumps_bundles(self):
        _cluster, result = self._crash_run()
        flight = result.observability["flight"]
        dumps = flight["dumps"]
        assert dumps, "crash under load produced no flight dumps"
        # The dump budget bounds the list; overflow is counted, not kept.
        assert len(dumps) <= 8
        # The crash (and the restart, if it fell inside the ring's window)
        # appears in at least one bundle's fault ring.
        assert any(
            any(fault["kind"] == "server_crash" for fault in bundle["faults"])
            for bundle in dumps
        )
        # Errored-op / SLO bundles carry the triggering op and its
        # attribution, and that attribution reconciles.
        carrying = [b for b in dumps if "op" in b]
        assert carrying
        for bundle in carrying:
            assert bundle["trigger"] in ("errored-op", "slo-violation")
            op = bundle["op"]
            finished = op["finished_at"] or op["started_at"]
            assert bundle["attribution"] == attribute_span_dict(op)
            assert_reconciles(
                bundle["attribution"], finished - op["started_at"]
            )
            assert bundle["recent_ops"], "bundle lost its recent-op rings"

    def test_report_cli_renders_a_bundle(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        _cluster, result = self._crash_run()
        bundle = next(
            b for b in result.observability["flight"]["dumps"] if "op" in b
        )
        path = tmp_path / "flight.json"
        path.write_text(json.dumps(bundle, sort_keys=True))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert bundle["trigger"] in out
        assert "server_crash" in out

    def test_disabled_by_budget_zero(self):
        cluster = fresh_cluster(obs_config(max_flight_dumps=0))
        cluster.obs.flight_dump("errored-op", None)
        snap = cluster.obs.snapshot()
        assert snap["flight"]["dumps"] == []
        assert snap["flight"]["dumps_suppressed"] == 1


class TestReportCli:
    def _run_dir(self, tmp_path):
        from repro.obs.__main__ import main

        out = tmp_path / "obs-out"
        assert main([
            "run", "--out-dir", str(out), "--clients", "4",
            "--sample-every", "2", "--timeseries-cadence-s", "0.001",
        ]) == 0
        return out

    def test_report_renders_breakdown_and_diff(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = self._run_dir(tmp_path)
        capsys.readouterr()
        assert main(["report", str(out), "--top-k", "3"]) == 0
        text = capsys.readouterr().out
        # The table truncates segment names to column width; check stems.
        assert "network_flig" in text
        assert "client_think" in text
        assert "p50" in text and "p99" in text

    def test_report_json_round_trips(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = self._run_dir(tmp_path)
        capsys.readouterr()
        assert main(["report", str(out), "--json", "--top-k", "5"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "obs-report"
        assert document["retained_ops"] > 0
        assert 0 < len(document["top"]) <= 5
        durations = [row["duration_s"] for row in document["top"]]
        assert durations == sorted(durations, reverse=True)
        for row in document["top"]:
            assert set(row["attribution"]) == set(SEGMENTS)
            assert_reconciles(row["attribution"], row["duration_s"])
        diff = document["diff"]
        for key in ("p50_share", "p99_share", "delta"):
            assert set(diff[key]) == set(SEGMENTS)
        for shares in (diff["p50_share"], diff["p99_share"]):
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
