"""Primary/backup replication: placement, mirroring, failover, recovery.

The contract under ``replication_factor=k > 1``:

* every logical server's region is byte-converged onto ``k - 1`` backups
  in ring order, the moment a mutation lands (synchronous state mirrors;
  the wire cost is charged separately as mirror legs);
* a memory-server crash is *destructive* — every copy the host held is
  wiped — yet no acknowledged write is lost: clients fail over to a
  promoted backup and keep going;
* with ``replication_factor == 1`` no manager exists at all and behavior
  (including the non-destructive crash semantics of the fault layer) is
  simulation-identical to the unreplicated build.
"""

from __future__ import annotations

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    CoarseGrainedIndex,
    ConfigurationWarning,
    FailoverError,
    FaultPlan,
    FineGrainedIndex,
    HybridIndex,
    ReplicaDivergenceError,
    RetryConfig,
    ServerCrash,
    verify_index,
)
from repro.errors import ConfigurationError
from repro.nam.allocator import PageAllocator
from repro.rdma.memory import MemoryRegion
from repro.workloads import generate_dataset

DESIGNS = ("coarse-grained", "fine-grained", "hybrid")


def _build(design, cluster, pairs, key_space):
    if design == "coarse-grained":
        return CoarseGrainedIndex.build(cluster, "idx", pairs, key_space=key_space)
    if design == "fine-grained":
        return FineGrainedIndex.build(cluster, "idx", pairs)
    return HybridIndex.build(cluster, "idx", pairs, key_space=key_space)


def _replicated_cluster(factor=2, num_servers=3, seed=23):
    return Cluster(
        ClusterConfig(
            num_memory_servers=num_servers,
            memory_servers_per_machine=1,
            replication_factor=factor,
            seed=seed,
        )
    )


class TestConfigValidation:
    def test_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(replication_factor=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_memory_servers=2, replication_factor=3)
        # factor == num_servers is the maximum legal setting.
        ClusterConfig(num_memory_servers=2, replication_factor=2)

    def test_tight_lease_warns(self):
        with pytest.warns(ConfigurationWarning, match="retry budget"):
            RetryConfig(lock_lease_s=1e-5)

    def test_default_lease_is_comfortable(self, recwarn):
        retry = RetryConfig()
        assert retry.lock_lease_s >= 2.0 * retry.retry_budget_s
        assert not [
            w for w in recwarn if issubclass(w.category, ConfigurationWarning)
        ]

    def test_retry_budget_formula(self):
        retry = RetryConfig(
            max_attempts=2, timeout_s=10e-6, base_delay_s=4e-6,
            backoff_multiplier=2.0, jitter_fraction=0.0,
        )
        # 2 * (10us + 4us * 2**1) = 36us
        assert retry.retry_budget_s == pytest.approx(36e-6)


class TestPlacementAndMirroring:
    def test_ring_placement(self):
        cluster = _replicated_cluster(factor=2, num_servers=3)
        replication = cluster.replication
        assert replication is not None
        for logical in range(3):
            copies = replication.replica_set(logical)
            assert [c.host_id for c in copies] == [logical, (logical + 1) % 3]
            assert all(c.live for c in copies)
            backup_host = cluster.memory_server((logical + 1) % 3)
            assert backup_host.backup_regions[logical] is copies[1].region

    def test_factor_one_has_no_manager(self):
        cluster = Cluster(ClusterConfig(num_memory_servers=3, seed=23))
        assert cluster.replication is None
        assert all(
            not server.backup_regions for server in cluster.memory_servers
        )

    @pytest.mark.parametrize("design", DESIGNS)
    def test_build_converges_replicas(self, design):
        cluster = _replicated_cluster()
        dataset = generate_dataset(800, gap=4)
        _build(design, cluster, dataset.pairs(), dataset.key_space)
        cluster.replication.assert_replicas_converged()

    def test_mutations_stay_converged_and_charge_mirror_legs(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(500, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        session = index.session(cluster.new_compute_server())
        before = cluster.replication.stats["mirror_legs"]
        for i in range(50):
            cluster.execute(session.insert(dataset.key_space + i, i))
        cluster.replication.assert_replicas_converged()
        assert cluster.replication.stats["mirror_legs"] > before
        assert cluster.replication.stats["mirrored_bytes"] > 0

    def test_divergence_detected(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(300, gap=4)
        FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        replication = cluster.replication
        backup = replication.replica_set(0)[1]
        original = backup.region.read(64, 1)
        backup.region.write(64, bytes([original[0] ^ 0xFF]))
        problems = replication.replica_divergences(0)
        assert problems and "byte 64" in problems[0]
        with pytest.raises(ReplicaDivergenceError):
            replication.assert_replicas_converged()
        # Repair and the check passes again.
        backup.region.write(64, original)
        replication.assert_replicas_converged()


class TestAllocatorAdopt:
    def test_adopt_preserves_allocations(self):
        region = MemoryRegion(1 << 16, 1 << 20)
        allocator = PageAllocator(region, 512)
        offsets = [allocator.allocate() for _ in range(5)]
        adopted = PageAllocator.adopt(region, 512)
        # The bump word survives: new allocations never overlap old pages.
        fresh = adopted.allocate()
        assert fresh not in offsets
        assert fresh > max(offsets)

    def test_adopt_fresh_region_initializes(self):
        region = MemoryRegion(1 << 16, 1 << 20)
        adopted = PageAllocator.adopt(region, 512)
        first = adopted.allocate()
        assert first >= 512  # page 0 stays reserved for control words


class TestCrashSemantics:
    def test_replicated_crash_is_destructive(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(400, gap=4)
        FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        victim = cluster.memory_server(1)
        assert any(victim.region.read(0, 4096))
        injector.crash_memory_server(1)
        # The host's own region AND the backup store it held are wiped.
        backup_store = victim.backup_regions[0]
        assert not any(victim.region.read(0, len(victim.region)))
        assert not any(backup_store.read(0, len(backup_store)))
        assert cluster.replication.stats["wiped_copies"] == 2
        copies = cluster.replication.replica_set(1)
        assert not copies[0].live and copies[1].live

    def test_unreplicated_crash_preserves_region(self):
        # factor == 1 keeps PR 1's non-destructive semantics byte-for-byte:
        # the region survives the outage (only availability is lost).
        cluster = Cluster(
            ClusterConfig(num_memory_servers=2, memory_servers_per_machine=1, seed=23)
        )
        dataset = generate_dataset(400, gap=4)
        FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        victim = cluster.memory_server(1)
        snapshot = victim.region.read(0, len(victim.region))
        injector.crash_memory_server(1)
        assert victim.region.read(0, len(victim.region)) == snapshot
        injector.restart_memory_server(1)
        assert victim.region.read(0, len(victim.region)) == snapshot

    def test_restart_resyncs_from_survivors(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(400, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        injector.crash_memory_server(1)
        # Mutate while the host is down so the resync has fresh state.
        session = index.session(cluster.new_compute_server())
        for i in range(20):
            cluster.execute(session.insert(dataset.key_space + i, i))
        injector.restart_memory_server(1)
        cluster.run(until=cluster.now + 0.05)
        assert cluster.replication.stats["resynced_copies"] >= 1
        assert cluster.replication.stats["resynced_bytes"] > 0
        cluster.replication.assert_replicas_converged()


class TestFailover:
    def test_promote_reroutes_and_bumps_epoch(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(400, gap=4)
        FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        replication = cluster.replication
        epoch = replication.epoch
        injector.crash_memory_server(1)
        replication.promote(1)
        assert replication.epoch == epoch + 1
        assert replication.primary_host_id(1) == 2
        host, region = replication.route(1)
        assert host.server_id == 2
        assert region is cluster.memory_server(2).backup_regions[1]
        # A compute server's QP for logical 1 now terminates at host 2.
        compute = cluster.new_compute_server()
        qp = compute.qp(1)
        assert qp.region is region

    def test_client_driven_failover(self):
        cluster = _replicated_cluster()
        dataset = generate_dataset(600, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        session = index.session(cluster.new_compute_server())
        injector.crash_memory_server(1)
        # Lookups spanning all partitions: the first one that hits the dead
        # primary exhausts retries, promotes, and every later op re-routes.
        for i in range(0, dataset.num_keys, 97):
            assert cluster.execute(session.lookup(dataset.key_at(i))) == [i]
        assert cluster.replication.stats["failovers"] >= 1
        assert injector.stats["retries"] > 0

    def test_failover_error_when_no_replica_left(self):
        cluster = _replicated_cluster(factor=2, num_servers=2)
        dataset = generate_dataset(300, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        injector.crash_memory_server(0)
        injector.crash_memory_server(1)
        session = index.session(cluster.new_compute_server())
        with pytest.raises(FailoverError):
            cluster.execute(session.lookup(dataset.key_at(5)))

    def test_re_replication_restores_factor(self):
        cluster = _replicated_cluster(factor=2, num_servers=4)
        dataset = generate_dataset(400, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        injector = cluster.attach_faults(FaultPlan())
        injector.crash_memory_server(1)
        session = index.session(cluster.new_compute_server())
        for i in range(0, dataset.num_keys, 61):
            assert cluster.execute(session.lookup(dataset.key_at(i))) == [i]
        cluster.run(until=cluster.now + 0.05)
        assert cluster.replication.stats["re_replications"] >= 1
        live = [
            c for c in cluster.replication.replica_set(1) if c.live
        ]
        assert len(live) >= 2
        cluster.replication.assert_replicas_converged()


@pytest.mark.parametrize("design", DESIGNS)
def test_crash_loses_no_acknowledged_write(design):
    """The headline acceptance scenario: destructively crash a memory
    server mid-workload at factor 2; every write acknowledged before,
    during, or after the outage must survive, the verifier must pass, and
    the replicas must be byte-converged."""
    cluster = _replicated_cluster(factor=2, num_servers=3)
    dataset = generate_dataset(800, gap=4)
    index = _build(design, cluster, dataset.pairs(), dataset.key_space)
    injector = cluster.attach_faults(FaultPlan())
    session = index.session(cluster.new_compute_server())

    acked = []

    def insert_batch(start, count):
        # Fresh keys interleaved across the whole key range (the dataset
        # leaves gaps), so every batch touches every partition — including
        # the victim's.
        for i in range(start, start + count):
            key = dataset.key_at(i * 6) + 1
            cluster.execute(session.insert(key, key * 10))
            acked.append(key)

    insert_batch(0, 40)  # healthy cluster
    injector.crash_memory_server(1)
    insert_batch(40, 40)  # during the outage: failover path
    injector.restart_memory_server(1)
    cluster.run(until=cluster.now + 0.05)
    insert_batch(80, 40)  # after resync
    injector.quiesce()

    lost = [
        key
        for key in acked
        if cluster.execute(session.lookup(key)) != [key * 10]
    ]
    assert not lost
    assert cluster.replication.stats["failovers"] >= 1
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    assert report.entries >= dataset.num_keys + len(acked)
    cluster.replication.assert_replicas_converged()


@pytest.mark.parametrize("design", DESIGNS)
def test_scheduled_crash_under_workload(design):
    """Same guarantee via the scheduled-crash plan: concurrent clients keep
    writing across a crash/restart window; acknowledged inserts survive."""
    cluster = _replicated_cluster(factor=2, num_servers=3, seed=29)
    dataset = generate_dataset(600, gap=4)
    index = _build(design, cluster, dataset.pairs(), dataset.key_space)
    injector = cluster.attach_faults(
        FaultPlan(
            seed=7,
            server_crashes=(ServerCrash(1, at_s=0.0005, down_for_s=0.002),),
        )
    )

    acked = []

    def writer(cid, count):
        session = index.session(cluster.new_compute_server())
        for i in range(count):
            # Interleave fresh keys across the range so every client
            # writes to every partition, including the victim's.
            key = dataset.key_at((cid + i * 4) % dataset.num_keys) + 1
            yield from session.insert(key, cid * 1_000_000 + i)
            acked.append((key, cid * 1_000_000 + i))

    procs = [cluster.spawn(writer(cid, 60)) for cid in range(4)]
    cluster.sim.run_until_complete(cluster.sim.all_of(procs))
    assert injector.stats["server_crashes"] == 1
    cluster.run(until=max(cluster.now, 0.003) + 0.01)
    assert injector.stats["server_restarts"] == 1
    injector.quiesce()

    session = index.session(cluster.new_compute_server())
    for key, value in acked:
        assert value in cluster.execute(session.lookup(key))
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    cluster.replication.assert_replicas_converged()


def test_factor_one_is_simulation_identical_to_baseline():
    """replication_factor=1 must not perturb the simulation at all: same
    results, same completion times, same network counters as the default
    config."""
    outcomes = []
    for factor in (None, 1):
        config = ClusterConfig(num_memory_servers=2, seed=31)
        if factor is not None:
            config = config.with_(replication_factor=factor)
        cluster = Cluster(config)
        dataset = generate_dataset(500, gap=4)
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
        session = index.session(cluster.new_compute_server())
        trace = []
        for i in range(60):
            key = dataset.key_at(i * 11 % dataset.num_keys)
            trace.append((cluster.execute(session.lookup(key)), cluster.now))
            cluster.execute(session.insert(key + 1, i))
            trace.append(cluster.now)
        trace.append(cluster.execute(session.range_scan(0, 400)))
        outcomes.append(trace)
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("design", DESIGNS)
def test_verifier_passes_on_healthy_index(design):
    cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=17))
    dataset = generate_dataset(700, gap=4)
    index = _build(design, cluster, dataset.pairs(), dataset.key_space)
    report = verify_index(cluster, index, strict_orphans=True)
    assert report.ok, report.violations
    assert report.entries == dataset.num_keys
    assert report.nodes > report.leaves > 0
    assert report.replicas_checked == 0  # no replication configured
    assert "OK" in report.summary()


def test_verifier_detects_corruption():
    cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=17))
    dataset = generate_dataset(700, gap=4)
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    tree = index.tree_for(cluster.new_compute_server())
    # Swap two keys in a leaf so its entries are no longer sorted.
    from repro.btree.node import Node
    from repro.btree.pointers import RemotePointer

    raw_ptr, _ = cluster.execute(tree._descend_to_level(dataset.key_at(0), 0))
    pointer = RemotePointer.from_raw(raw_ptr)
    page_size = cluster.config.tree.page_size
    region = cluster.memory_server(pointer.server_id).region
    node = Node.from_bytes(region.read(pointer.offset, page_size))
    assert node.count >= 2
    node.keys[0], node.keys[1] = node.keys[1], node.keys[0]
    region.write(pointer.offset, node.to_bytes(page_size))
    report = verify_index(cluster, index)
    assert not report.ok
    assert any("sorted" in violation for violation in report.violations)
