"""Tests for registered memory regions."""

import pytest

from repro.errors import RemoteAccessError
from repro.rdma.memory import MemoryRegion


def test_read_write_roundtrip():
    region = MemoryRegion(1024, 4096)
    region.write(100, b"hello")
    assert region.read(100, 5) == b"hello"


def test_unwritten_memory_reads_zero():
    region = MemoryRegion(1024, 4096)
    assert region.read(0, 16) == bytes(16)


def test_region_grows_on_demand():
    region = MemoryRegion(16, 1 << 22)
    region.write(1 << 21, b"deep")
    assert region.read(1 << 21, 4) == b"deep"
    assert len(region) >= (1 << 21) + 4


def test_growth_capped_at_max():
    region = MemoryRegion(16, 1024)
    with pytest.raises(RemoteAccessError):
        region.write(2048, b"x")


def test_negative_offsets_rejected():
    region = MemoryRegion(16, 1024)
    with pytest.raises(RemoteAccessError):
        region.read(-1, 4)
    with pytest.raises(RemoteAccessError):
        region.write(-1, b"x")


def test_u64_roundtrip():
    region = MemoryRegion(64, 1024)
    region.write_u64(8, 0xDEADBEEF12345678)
    assert region.read_u64(8) == 0xDEADBEEF12345678


def test_u64_wraps_at_64_bits():
    region = MemoryRegion(64, 1024)
    region.write_u64(0, (1 << 64) + 5)
    assert region.read_u64(0) == 5


class TestReadView:
    """The zero-copy view path behind the engine's fast READ."""

    def test_view_is_readonly_and_aliases_live_buffer(self):
        region = MemoryRegion(1024, 4096)
        region.write(100, b"hello")
        view = region.read_view(100, 5)
        assert isinstance(view, memoryview)
        assert view.readonly
        assert bytes(view) == b"hello"
        # No copy was taken: a later write shows through the same view.
        region.write(100, b"world")
        assert bytes(view) == b"world"
        view.release()

    def test_view_never_copies_large_reads(self):
        # Equality with read() proves content; identity of the underlying
        # buffer proves zero-copy (obj is the region's own bytearray).
        region = MemoryRegion(1 << 16, 1 << 20)
        region.write(4096, bytes(range(256)) * 2)
        view = region.read_view(4096, 512)
        assert bytes(view) == region.read(4096, 512)
        assert view.obj is region._buf
        view.release()

    def test_live_caller_view_blocks_growth(self):
        region = MemoryRegion(64, 1 << 22)
        view = region.read_view(0, 16)
        with pytest.raises(BufferError):
            region.write(1 << 20, b"grow")
        # Dropping the view unblocks growth (the cached master is
        # released internally; only caller-held slices pin the buffer).
        view.release()
        region.write(1 << 20, b"grow")
        assert region.read(1 << 20, 4) == b"grow"

    def test_internal_master_view_does_not_block_growth(self):
        # read()/read_view() build a cached master view internally; that
        # cache alone must never prevent the region from growing.
        region = MemoryRegion(64, 1 << 22)
        assert region.read(0, 8) == bytes(8)
        bytes(region.read_view(0, 8))
        region.write(1 << 20, b"ok")
        assert region.read(1 << 20, 2) == b"ok"

    def test_view_extends_region_like_read(self):
        region = MemoryRegion(16, 4096)
        view = region.read_view(0, 64)  # past the end: zero-filled growth
        assert bytes(view) == bytes(64)
        assert len(region) >= 64

    def test_negative_view_rejected(self):
        region = MemoryRegion(16, 1024)
        with pytest.raises(RemoteAccessError):
            region.read_view(-1, 4)
        with pytest.raises(RemoteAccessError):
            region.read_view(0, -4)


class TestAtomics:
    def test_cas_success(self):
        region = MemoryRegion(64, 1024)
        region.write_u64(0, 10)
        swapped, old = region.compare_and_swap(0, 10, 20)
        assert swapped and old == 10
        assert region.read_u64(0) == 20

    def test_cas_failure_returns_current_value(self):
        region = MemoryRegion(64, 1024)
        region.write_u64(0, 10)
        swapped, old = region.compare_and_swap(0, 11, 20)
        assert not swapped and old == 10
        assert region.read_u64(0) == 10

    def test_fetch_and_add_returns_old(self):
        region = MemoryRegion(64, 1024)
        region.write_u64(0, 100)
        assert region.fetch_and_add(0, 5) == 100
        assert region.read_u64(0) == 105

    def test_fetch_and_add_wraps(self):
        region = MemoryRegion(64, 1024)
        region.write_u64(0, (1 << 64) - 1)
        assert region.fetch_and_add(0, 1) == (1 << 64) - 1
        assert region.read_u64(0) == 0

    def test_lock_word_protocol(self):
        """The version/lock discipline used by optimistic lock coupling:
        CAS sets bit 0, FAA(+1) releases and bumps the version."""
        region = MemoryRegion(64, 1024)
        version = region.read_u64(0)
        assert version % 2 == 0
        swapped, _ = region.compare_and_swap(0, version, version | 1)
        assert swapped
        # Second locker fails while the bit is set.
        swapped2, observed = region.compare_and_swap(0, version, version | 1)
        assert not swapped2 and observed == version | 1
        region.fetch_and_add(0, 1)
        assert region.read_u64(0) == version + 2
