"""Tests for the RPC message vocabulary and wire-size accounting."""

from repro.nam.rpc import (
    RPC_HEADER_BYTES,
    AckResponse,
    DeleteRequest,
    InsertRequest,
    InstallSeparatorRequest,
    PairsResponse,
    PointLookupRequest,
    PointerResponse,
    RangeScanRequest,
    TraverseRequest,
    ValueResponse,
)


def test_request_wire_sizes():
    assert PointLookupRequest("i", 1).wire_bytes == RPC_HEADER_BYTES + 8
    assert RangeScanRequest("i", 1, 2).wire_bytes == RPC_HEADER_BYTES + 16
    assert InsertRequest("i", 1, 2).wire_bytes == RPC_HEADER_BYTES + 16
    assert DeleteRequest("i", 1).wire_bytes == RPC_HEADER_BYTES + 8
    assert TraverseRequest("i", 1).wire_bytes == RPC_HEADER_BYTES + 8
    assert InstallSeparatorRequest("i", 1, 2, 3).wire_bytes == RPC_HEADER_BYTES + 24


def test_response_wire_sizes_scale_with_payload():
    assert ValueResponse(()).wire_bytes == RPC_HEADER_BYTES
    assert ValueResponse((1, 2, 3)).wire_bytes == RPC_HEADER_BYTES + 24
    assert PairsResponse(()).wire_bytes == RPC_HEADER_BYTES
    assert PairsResponse(((1, 2),) * 10).wire_bytes == RPC_HEADER_BYTES + 160
    assert AckResponse().wire_bytes == RPC_HEADER_BYTES
    assert PointerResponse(42).wire_bytes == RPC_HEADER_BYTES + 8


def test_messages_are_hashable_values():
    assert PointLookupRequest("i", 1) == PointLookupRequest("i", 1)
    assert hash(AckResponse()) == hash(AckResponse())
