"""Physical machines of the simulated cluster.

A machine contributes a NIC (possibly dual-port, like the paper's
Connect-IB cards) and two CPU sockets. The NIC is attached to socket 0:
a memory server pinned to socket 1 pays the QPI penalty on every memory
access its RPC handlers perform — the effect that caps the coarse-grained
design's scaling in Section 6.1.
"""

from __future__ import annotations

from repro.config import NetworkConfig
from repro.rdma.nic import Nic, NicPort
from repro.sim import Simulator

__all__ = ["PhysicalMachine"]


class PhysicalMachine:
    """One host: identity plus a NIC with a configurable number of ports."""

    def __init__(
        self,
        sim: Simulator,
        machine_id: int,
        network: NetworkConfig,
        num_ports: int,
        kind: str,
    ) -> None:
        self.machine_id = machine_id
        self.kind = kind  # "memory" | "compute" (informational)
        self.nic = Nic(sim, network, num_ports, label=f"{kind}{machine_id}")

    def port(self, index: int) -> NicPort:
        return self.nic.port(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalMachine({self.kind}{self.machine_id})"
