"""Benchmark target for the doorbell-batching extension.

Runs the batched-vs-unbatched grid of
:mod:`repro.experiments.ext_verb_batching` at its default scale (all three
designs, 8 memory servers) and writes ``BENCH_batching.json`` next to the
repo root so the speedup and engine-speed trajectory is recorded per
commit. The CI ``perf-smoke`` job gates the same numbers (smoke scale)
against ``benchmarks/baselines/BENCH_batching_smoke.json``.
"""

import json
from pathlib import Path

from repro.experiments import ext_verb_batching


def test_verb_batching_extension(benchmark, run_once):
    results = run_once(ext_verb_batching.run)
    ext_verb_batching.print_figure(results)

    payload = ext_verb_batching.results_to_json(results)
    benchmark.extra_info["batching"] = payload

    out = Path(__file__).resolve().parent.parent / "BENCH_batching.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    fine = results["fine-grained"]
    hybrid = results["hybrid"]
    coarse = results["coarse-grained"]

    # The acceptance bar: batching buys the fine-grained design at least
    # 1.5x simulated throughput on the message-rate-bound profile.
    assert fine.speedup >= ext_verb_batching.SPEEDUP_FLOOR, fine.speedup
    # The hybrid leaf level uses the same one-sided fan-out, so it must
    # benefit too (its RPC traversals dilute the win).
    assert hybrid.speedup > 1.2, hybrid.speedup
    # Coarse-grained is pure RPC: batching must be a no-op, not a tax.
    assert 0.95 <= coarse.speedup <= 1.05, coarse.speedup
    # Batching removes simulation events (fewer messages), so the batched
    # run must not schedule more of them.
    assert fine.batched.sim_steps < fine.unbatched.sim_steps
