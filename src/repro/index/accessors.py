"""Concrete node accessors and root references.

Two accessor implementations mirror the paper's two access paths:

* :class:`LocalAccessor` — runs *inside* a memory server (coarse-grained
  RPC handlers, hybrid inner-level traversals). Node operations touch the
  server's own region directly; their cost is CPU time charged to the RPC
  worker executing them (QPI-adjusted), which is how the two-sided designs
  become CPU-bound under load.

* :class:`RemoteAccessor` — runs on a compute server and reaches nodes with
  one-sided verbs over queue pairs (fine-grained design, hybrid leaf level).
  Page allocation is a one-sided FETCH_AND_ADD on the target server's
  allocation word, round-robin across servers — no remote CPU involved.

Root references follow the same split: :class:`LocalRootRef` reads/CASes a
root word in the server's own region; :class:`RemoteRootRef` caches the
root pointer on the compute server (stale roots are harmless in B-link
trees) and refreshes/swings it with one-sided READ/CAS.

Lock leases (crash recovery): a remote spinlock held by a crashed client
would wedge its subtree forever, so :class:`RemoteAccessor` extends the
paper's lock word. While locked, bits 48-63 carry the locker's *owner
tag* (an epoch identifying the locking session) next to the version bits;
the tag vanishes as soon as the critical section writes the page back, and
both unlock variants restore a clean, even, incremented version — so the
extension is invisible to the crash-free protocol. Recovery is time-based,
FaRM-style: a spinner that has watched the *same* locked word for
``RetryConfig.lock_lease_s`` (far longer than any live critical section,
including its worst-case retry budget) CAS-steals the word back to
unlocked. The B-link structure makes every crash instant safe: a holder
dies either before writing (steal exposes the old page), after writing its
split sibling (reachable via the sibling pointer), or after the page write
(steal exposes the new page). Leases are active only while a
:class:`~repro.rdma.faults.FaultInjector` is attached to the fabric.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Generator, List

from repro.btree.accessor import NodeAccessor, RootRef
from repro.btree.node import Node
from repro.btree.pointers import NULL_RAW, RemotePointer, encode_pointer

#: Low 56 bits of a raw pointer (RemotePointer.from_raw's offset mask),
#: for the inlined decode on the read_node hot path.
_PTR_OFFSET_MASK = (1 << 56) - 1

#: Version-word peek without a slice allocation (unpack_from reads the
#: first 8 bytes of any buffer directly).
_PEEK_U64 = struct.Struct("<Q").unpack_from
from repro.errors import CatalogError, RemoteAccessError
from repro.nam.allocator import ALLOC_WORD_OFFSET
from repro.nam.catalog import RootLocation
from repro.nam.compute_server import ComputeServer
from repro.nam.memory_server import MemoryServer
from repro.nam.replication import failover_retry

__all__ = ["LocalAccessor", "RemoteAccessor", "LocalRootRef", "RemoteRootRef"]

#: While a node is write-locked, bits 48-63 of its version word carry the
#: locker's owner tag; bits 0-47 keep the version counter and lock bit.
#: Unlock paths always restore a tag-free word, so unlocked words are plain
#: even versions exactly as in the paper.
_LOCK_TAG_SHIFT = 48
_LOCK_VERSION_MASK = (1 << _LOCK_TAG_SHIFT) - 1


class LocalAccessor(NodeAccessor):
    """Node access from within a memory server's RPC worker.

    Normally the accessed region is the hosting server's own and the
    logical id it answers for is the server's id. After a failover the
    promoted host serves an *adopted* logical server: the promotion hooks
    rebuild local accessors with explicit ``region`` / ``logical_id`` /
    ``allocator`` overrides pointing at the adopted replica copy, while
    CPU time keeps being charged to the physical host doing the work.
    """

    def __init__(
        self,
        server: MemoryServer,
        region=None,
        logical_id: int = None,
        allocator=None,
    ) -> None:
        self.server = server
        self.region = region if region is not None else server.region
        self.logical_id = logical_id if logical_id is not None else server.server_id
        self.allocator = allocator if allocator is not None else server.allocator
        self.obs = server.obs
        self.page_size = server.config.tree.page_size
        self._node_cost = server.config.cpu.per_node_cost_s
        self._atomic_cost = server.config.cpu.per_node_cost_s / 4
        self._spin_slice = server.config.cpu.spin_wait_slice_s

    def _offset(self, raw_ptr: int) -> int:
        pointer = RemotePointer.from_raw(raw_ptr)
        if pointer.server_id != self.logical_id:
            raise RemoteAccessError(
                f"local accessor for logical server {self.logical_id} asked to "
                f"touch a node on server {pointer.server_id}"
            )
        return pointer.offset

    def _emit(self, kind: str, verb: str, offset: int, length: int, epoch: int = 0) -> None:
        """Report a region effect to an attached trace sanitizer. The actor
        is the *physical* host whose worker runs this accessor; the server
        field is the logical id whose bytes are touched (they differ on a
        promoted backup)."""
        sanitizer = getattr(self.server, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.emit(
                f"s{self.server.server_id}",
                kind,
                verb,
                self.logical_id,
                offset,
                length,
                self.server.sim.now,
                lock_epoch=epoch,
            )

    def read_node(
        self, raw_ptr: int, shared: bool = False
    ) -> Generator[Any, Any, Node]:
        offset = self._offset(raw_ptr)
        yield self.server.cpu(self._node_cost)
        # Zero-copy: decode straight out of the region through a read-only
        # view, consumed before the next simulation yield (holding it longer
        # would block region growth — see MemoryRegion.read_view).
        view = self.region.read_view(offset, self.page_size)
        self._emit("read", "LOCAL_READ", offset, self.page_size)
        try:
            return Node.from_bytes(view)
        finally:
            view.release()

    def write_node(self, raw_ptr: int, node: Node) -> Generator[Any, Any, None]:
        offset = self._offset(raw_ptr)
        yield self.server.cpu(self._node_cost)
        self.region.write(offset, node.to_bytes(self.page_size))
        self._emit("write", "LOCAL_WRITE", offset, self.page_size)

    def try_lock(self, raw_ptr: int, version: int) -> Generator[Any, Any, bool]:
        offset = self._offset(raw_ptr)
        yield self.server.cpu(self._atomic_cost)
        swapped, old = self.region.compare_and_swap(
            offset, version, version | 1
        )
        self._emit("atomic", "LOCAL_CAS", offset, 8, epoch=old)
        obs = self.obs
        if obs is not None:
            if swapped:
                obs.lock_acquired()
            else:
                obs.lock_contended()
        return swapped

    def unlock_write(self, raw_ptr: int, node: Node) -> Generator[Any, Any, None]:
        offset = self._offset(raw_ptr)
        node.version |= 1
        yield self.server.cpu(self._node_cost)
        self.region.write(offset, node.to_bytes(self.page_size))
        self._emit("write", "LOCAL_WRITE", offset, self.page_size)
        old = self.region.fetch_and_add(offset, 1)
        self._emit("atomic", "LOCAL_FAA", offset, 8, epoch=old)

    def unlock_nochange(self, raw_ptr: int) -> Generator[Any, Any, None]:
        offset = self._offset(raw_ptr)
        yield self.server.cpu(self._atomic_cost)
        old = self.region.fetch_and_add(offset, 1)
        self._emit("atomic", "LOCAL_FAA", offset, 8, epoch=old)

    def alloc(self, level: int) -> Generator[Any, Any, int]:
        yield self.server.cpu(self._atomic_cost)
        offset = self.allocator.allocate()
        return encode_pointer(self.logical_id, offset)

    def spin_pause(self) -> Generator[Any, Any, None]:
        # The worker burns its core while spinning — deliberately.
        obs = self.obs
        if obs is None:
            yield self.server.cpu(self._spin_slice)
            return
        obs.lock_spin_round()
        started = self.server.sim.now
        yield self.server.cpu(self._spin_slice)
        obs.stamp("lock_wait", started, self.server.sim.now)

    def now(self) -> float:
        return self.server.sim.now


class RemoteAccessor(NodeAccessor):
    """Node access from a compute server through one-sided verbs."""

    def __init__(
        self,
        compute_server: ComputeServer,
        config,
        alloc_server_id: int = None,
        batch_verbs: bool = None,
    ) -> None:
        self.compute_server = compute_server
        self.config = config
        self.obs = compute_server.fabric.obs
        self.page_size = config.tree.page_size
        self._search_cost = config.cpu.client_per_node_cost_s
        self._spin_slice = config.cpu.spin_wait_slice_s
        # Doorbell batching for multi-verb operations (prefetch fan-out,
        # write+FAA unlocks). ``batch_verbs`` overrides the cluster-wide
        # NetworkConfig.doorbell_batching default per index build.
        self._batching = (
            config.network.doorbell_batching if batch_verbs is None else batch_verbs
        )
        self._max_wqes = config.network.max_batch_wqes
        # Stagger allocation round-robin across compute servers so they do
        # not all bump the same server's allocator in lockstep. When
        # ``alloc_server_id`` is given, all pages go to that server instead
        # (used for co-located coarse-grained trees, whose pages must stay
        # on the partition owner).
        self._alloc_counter = compute_server.server_id
        self._alloc_pinned = alloc_server_id
        # Owner tag stamped into locked words (see module docstring). Tag 0
        # is reserved for taggless lockers (local accessors), so shift ids
        # by one. The tag is always applied — it is behaviorally invisible
        # without faults — which keeps the happy path bit-for-bit identical
        # whether or not an injector is attached.
        self._owner_tag_word = ((compute_server.server_id + 1) & 0xFFFF) << _LOCK_TAG_SHIFT
        #: Lock steals performed by this accessor (lease recovery).
        self.lock_steals = 0
        # Decode memoization: raw_ptr -> master Node of the last unlocked
        # page image seen there, keyed by the version word embedded in the
        # image (pages are bump-allocated and never recycled, and every
        # mutation bumps the version, so (raw_ptr, even version) names one
        # page content for the whole run). Purely host-side: the RDMA READ
        # still happens; only the redundant re-parse of an unchanged image
        # is skipped. Masters are shared — mutable callers get clones.
        # Disabled (checked per read) under fault injection or replication,
        # where observed images may be transient locked/stale states not
        # worth reasoning about.
        self._decode_cache: Dict[int, Node] = {}

    def _failover(self, server_id: int, op_factory) -> Generator[Any, Any, Any]:
        """Run ``op_factory()`` with failover-on-retries-exhausted.

        Without a replication manager this is a plain delegation (zero
        extra simulation events). With one, a
        :class:`~repro.errors.RetriesExhaustedError` triggers a consult of
        the directory epoch — and a backup promotion if this client is the
        first to notice the crash — before the operation is retried
        against the re-routed queue pair. ``op_factory`` must resolve its
        queue pair via :meth:`ComputeServer.qp` on every call so the
        retry lands on the new primary.
        """
        if self.compute_server.fabric.replication is None:
            return (yield from op_factory())
        return (
            yield from failover_retry(self.compute_server, server_id, op_factory)
        )

    def _decode_shared(self, raw_ptr: int, data) -> Node:
        """Decode *data*, reusing the cached master if the image's version
        word is unchanged. The returned node is shared: callers must treat
        it as immutable (clone before mutating)."""
        version = _PEEK_U64(data)[0]
        cache = self._decode_cache
        master = cache.get(raw_ptr)
        if master is not None and master.version == version:
            return master
        master = Node.from_bytes(data)
        if not version & 1:
            cache[raw_ptr] = master
        return master

    def read_node(
        self, raw_ptr: int, shared: bool = False
    ) -> Generator[Any, Any, Node]:
        compute = self.compute_server
        fabric = compute.fabric
        if fabric.replication is None:
            # Hot path: no failover wrapper, no op closure — drive the
            # queue pair's READ generator directly. The pointer decode is
            # inlined (RemotePointer.from_raw without the tuple).
            if raw_ptr == 0 or raw_ptr & NULL_RAW:
                raise RemoteAccessError("cannot decode a NULL remote pointer")
            if fabric.injector is None:
                # Zero-copy fetch: the view aliases the live region, so it
                # is decoded immediately — before the search-cost yield,
                # during which a concurrent writer could change the page —
                # and dropped. The decode input is exactly the bytes a
                # copying READ would have returned.
                data = yield from compute.qp((raw_ptr >> 56) & 0x7F).read_view(
                    raw_ptr & _PTR_OFFSET_MASK, self.page_size
                )
                master = self._decode_shared(raw_ptr, data)
                data = None
                yield compute.sim.timeout(self._search_cost)
                if shared:
                    # Read-only traversals take the memoized master as-is.
                    return master
                # Mutating callers (insert/update/delete descents) get a
                # private clone of the memoized decode.
                return master.clone()
            data = yield from compute.qp((raw_ptr >> 56) & 0x7F).read(
                raw_ptr & _PTR_OFFSET_MASK, self.page_size
            )
            yield compute.sim.timeout(self._search_cost)
            return Node.from_bytes(data)
        else:
            pointer = RemotePointer.from_raw(raw_ptr)

            def op() -> Generator[Any, Any, bytes]:
                qp = compute.qp(pointer.server_id)
                return (yield from qp.read(pointer.offset, self.page_size))

            data = yield from failover_retry(compute, pointer.server_id, op)
        yield compute.sim.timeout(self._search_cost)
        return Node.from_bytes(data)

    def read_nodes(self, raw_ptrs) -> Generator[Any, Any, List[Node]]:
        """Fetch several nodes at once (head-node prefetch fan-out).

        With doorbell batching the pointers are grouped by home server and
        each group is posted as chains of up to ``max_batch_wqes`` READs —
        one doorbell and one request/response message pair per chain,
        instead of one per node. Groups on different servers still overlap
        in time. Without batching each node is its own parallel READ (the
        seed behavior). Results come back in ``raw_ptrs`` order either way.
        """
        sim = self.compute_server.sim
        raw_ptrs = list(raw_ptrs)
        if not self._batching or len(raw_ptrs) < 2:
            pending = [sim.process(self.read_node(raw)) for raw in raw_ptrs]
            nodes = yield sim.all_of(pending)
            return nodes
        by_server: dict = {}
        for slot, raw in enumerate(raw_ptrs):
            pointer = RemotePointer.from_raw(raw)
            by_server.setdefault(pointer.server_id, []).append(
                (slot, pointer.offset)
            )
        nodes: List[Node] = [None] * len(raw_ptrs)
        compute = self.compute_server
        fabric = compute.fabric
        page_size = self.page_size
        max_wqes = self._max_wqes
        search_cost = self._search_cost
        # Prefetched nodes feed read-only scan consumers, so memoized
        # masters are handed out without cloning (see _decode_shared).
        memoize = fabric.injector is None and fabric.replication is None
        decode = self._decode_shared
        from_bytes = Node.from_bytes

        def read_group(server_id, members) -> Generator[Any, Any, None]:
            for start in range(0, len(members), max_wqes):
                chunk = members[start : start + max_wqes]
                if fabric.replication is None:
                    batch = compute.qp(server_id).batch()
                    batch_read = batch.read
                    for _slot, offset in chunk:
                        batch_read(offset, page_size)
                    pages = yield from batch.execute()
                else:
                    def op(chunk=chunk) -> Generator[Any, Any, list]:
                        qp = compute.qp(server_id)
                        batch = qp.batch()
                        for _slot, offset in chunk:
                            batch.read(offset, page_size)
                        return (yield from batch.execute())

                    pages = yield from failover_retry(compute, server_id, op)
                yield sim.timeout(search_cost * len(chunk))
                if memoize:
                    for (slot, _offset), data in zip(chunk, pages):
                        nodes[slot] = decode(raw_ptrs[slot], data)
                else:
                    for (slot, _offset), data in zip(chunk, pages):
                        nodes[slot] = from_bytes(data)

        pending = [
            sim.process(read_group(server_id, members))
            for server_id, members in by_server.items()
        ]
        yield sim.all_of(pending)
        return nodes

    def read_version(self, raw_ptr: int) -> Generator[Any, Any, int]:
        """One 8-byte READ of the node's version word (page offset 0).

        This is the 1-verb revalidation primitive of the client-side node
        cache (docs/caching.md): version words only ever grow, so a cached
        image whose version still matches the remote word is the current
        page content, while any mismatch — including an odd, locked word —
        means the image must be refetched.
        """
        pointer = RemotePointer.from_raw(raw_ptr)

        def op() -> Generator[Any, Any, bytes]:
            qp = self.compute_server.qp(pointer.server_id)
            return (yield from qp.read(pointer.offset, 8))

        data = yield from self._failover(pointer.server_id, op)
        return int.from_bytes(data, "little")

    def write_node(self, raw_ptr: int, node: Node) -> Generator[Any, Any, None]:
        pointer = RemotePointer.from_raw(raw_ptr)
        data = node.to_bytes(self.page_size)

        def op() -> Generator[Any, Any, None]:
            qp = self.compute_server.qp(pointer.server_id)
            yield from qp.write(pointer.offset, data)

        yield from self._failover(pointer.server_id, op)

    def try_lock(self, raw_ptr: int, version: int) -> Generator[Any, Any, bool]:
        pointer = RemotePointer.from_raw(raw_ptr)
        compute = self.compute_server
        locked_word = version | 1 | self._owner_tag_word
        if compute.fabric.replication is None:
            swapped, _old = yield from compute.qp(
                pointer.server_id
            ).compare_and_swap(pointer.offset, version, locked_word)
        else:
            def op() -> Generator[Any, Any, Any]:
                qp = compute.qp(pointer.server_id)
                return (
                    yield from qp.compare_and_swap(
                        pointer.offset, version, locked_word
                    )
                )

            swapped, _old = yield from failover_retry(
                compute, pointer.server_id, op
            )
        obs = self.obs
        if obs is not None:
            if swapped:
                obs.lock_acquired()
            else:
                obs.lock_contended()
        return swapped

    def unlock_write(self, raw_ptr: int, node: Node) -> Generator[Any, Any, None]:
        # The page image is written with a tag-free locked version, so the
        # subsequent FAA(+1) both clears our owner tag (the word was just
        # overwritten) and releases the lock.
        pointer = RemotePointer.from_raw(raw_ptr)
        node.version |= 1
        data = node.to_bytes(self.page_size)

        if self._batching:
            # One doorbell: the page WRITE and the releasing FAA travel in
            # a single chain. RC in-order execution applies the write
            # before the version bump, so the unlock is still a release
            # store — and the two round trips collapse into one.
            compute = self.compute_server
            fabric = compute.fabric
            if fabric.replication is None:
                if fabric.injector is None:
                    # Hottest chain of every write workload: skip the
                    # VerbBatch staging and drive the specialized
                    # WRITE+FAA generator (same wire accounting).
                    yield from compute.qp(pointer.server_id).write_faa_chain(
                        pointer.offset, data
                    )
                    return
                batch = compute.qp(pointer.server_id).batch()
                batch.write(pointer.offset, data)
                batch.fetch_and_add(pointer.offset, 1)
                yield from batch.execute()
                return

            def batch_op() -> Generator[Any, Any, list]:
                qp = compute.qp(pointer.server_id)
                batch = qp.batch()
                batch.write(pointer.offset, data)
                batch.fetch_and_add(pointer.offset, 1)
                return (yield from batch.execute())

            yield from failover_retry(compute, pointer.server_id, batch_op)
            return

        def write_op() -> Generator[Any, Any, None]:
            qp = self.compute_server.qp(pointer.server_id)
            yield from qp.write(pointer.offset, data)

        def faa_op() -> Generator[Any, Any, int]:
            qp = self.compute_server.qp(pointer.server_id)
            return (yield from qp.fetch_and_add(pointer.offset, 1))

        yield from self._failover(pointer.server_id, write_op)
        yield from self._failover(pointer.server_id, faa_op)

    def unlock_nochange(self, raw_ptr: int) -> Generator[Any, Any, None]:
        # Single FAA that increments the version *and* subtracts our owner
        # tag (mod 2**64), restoring a clean even word in one atomic.
        pointer = RemotePointer.from_raw(raw_ptr)
        compute = self.compute_server
        if compute.fabric.replication is None:
            yield from compute.qp(pointer.server_id).fetch_and_add(
                pointer.offset, 1 - self._owner_tag_word
            )
            return

        def op() -> Generator[Any, Any, int]:
            qp = compute.qp(pointer.server_id)
            return (
                yield from qp.fetch_and_add(pointer.offset, 1 - self._owner_tag_word)
            )

        yield from failover_retry(compute, pointer.server_id, op)

    def alloc(self, level: int) -> Generator[Any, Any, int]:
        if self._alloc_pinned is not None:
            server_id = self._alloc_pinned
        else:
            server_id = self._alloc_counter % self.compute_server.num_memory_servers
            self._alloc_counter += 1

        def op() -> Generator[Any, Any, int]:
            qp = self.compute_server.qp(server_id)
            return (yield from qp.fetch_and_add(ALLOC_WORD_OFFSET, self.page_size))

        offset = yield from self._failover(server_id, op)
        return encode_pointer(server_id, offset)

    def spin_pause(self) -> Generator[Any, Any, None]:
        # Remote spinlock: back off, then the caller re-READs the node.
        obs = self.obs
        if obs is None:
            yield self.compute_server.sim.timeout(self._spin_slice)
            return
        obs.lock_spin_round()
        sim = self.compute_server.sim
        started = sim.now
        yield sim.timeout(self._spin_slice)
        obs.stamp("lock_wait", started, sim.now)

    # -- lock-lease recovery ----------------------------------------------------

    def now(self) -> float:
        return self.compute_server.sim.now

    def lock_lease_s(self):
        injector = self.compute_server.fabric.injector
        if injector is None:
            return None
        return injector.lock_lease_s

    def try_steal_lock(
        self, raw_ptr: int, observed_word: int
    ) -> Generator[Any, Any, bool]:
        # The observed word has been locked and unchanged for a full lease:
        # presume its holder crashed. CAS it straight to an unlocked word
        # with the version advanced past the dead holder's locked version
        # (clear the owner tag and lock bit, then +2), so optimistic readers
        # that captured the pre-crash version correctly restart.
        pointer = RemotePointer.from_raw(raw_ptr)
        stolen_word = ((observed_word & _LOCK_VERSION_MASK) & ~1) + 2

        def op() -> Generator[Any, Any, Any]:
            qp = self.compute_server.qp(pointer.server_id)
            return (
                yield from qp.compare_and_swap(
                    pointer.offset, observed_word, stolen_word
                )
            )

        swapped, _old = yield from self._failover(pointer.server_id, op)
        if swapped:
            self.lock_steals += 1
            injector = self.compute_server.fabric.injector
            if injector is not None:
                injector.record_steal()
            if self.obs is not None:
                self.obs.lock_stolen()
        return swapped


class LocalRootRef(RootRef):
    """A root pointer word in the accessing server's own region.

    With an explicit ``region`` (a promoted host operating an adopted
    replica copy) the same-server check is skipped — the root word then
    lives in the adopted region rather than the host's own.
    """

    def __init__(
        self, server: MemoryServer, location: RootLocation, region=None
    ) -> None:
        if region is None and location.server_id != server.server_id:
            raise CatalogError(
                "local root reference must live on the accessing server"
            )
        self.server = server
        self.region = region if region is not None else server.region
        self.logical_id = location.server_id
        self.offset = location.offset

    def _emit(self, kind: str, verb: str, epoch: int = 0) -> None:
        sanitizer = getattr(self.server, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.emit(
                f"s{self.server.server_id}",
                kind,
                verb,
                self.logical_id,
                self.offset,
                8,
                self.server.sim.now,
                lock_epoch=epoch,
            )

    def get(self) -> Generator[Any, Any, int]:
        raw = self.region.read_u64(self.offset)
        self._emit("read", "LOCAL_READ")
        return raw
        yield  # pragma: no cover - unreachable; makes this a generator

    def refresh(self) -> Generator[Any, Any, int]:
        raw = self.region.read_u64(self.offset)
        self._emit("read", "LOCAL_READ")
        return raw
        yield  # pragma: no cover - unreachable; makes this a generator

    def compare_and_swap(self, old: int, new: int) -> Generator[Any, Any, bool]:
        swapped, current = self.region.compare_and_swap(self.offset, old, new)
        self._emit("atomic", "LOCAL_CAS", epoch=current)
        return swapped
        yield  # pragma: no cover - unreachable; makes this a generator


class RemoteRootRef(RootRef):
    """A cached root pointer maintained over one-sided verbs.

    The cached value may lag behind a concurrent root split; traversals
    from a stale root remain correct (move-right), and
    :meth:`refresh` re-reads the authoritative word when the algorithm
    detects the tree grew.
    """

    def __init__(self, compute_server: ComputeServer, location: RootLocation) -> None:
        self.compute_server = compute_server
        self.location = location
        self._cached: int = 0

    def get(self) -> Generator[Any, Any, int]:
        if self._cached:
            return self._cached
        return (yield from self.refresh())

    def _failover(self, op_factory) -> Generator[Any, Any, Any]:
        if self.compute_server.fabric.replication is None:
            return (yield from op_factory())
        return (
            yield from failover_retry(
                self.compute_server, self.location.server_id, op_factory
            )
        )

    def refresh(self) -> Generator[Any, Any, int]:
        def op() -> Generator[Any, Any, bytes]:
            qp = self.compute_server.qp(self.location.server_id)
            return (yield from qp.read(self.location.offset, 8))

        data = yield from self._failover(op)
        raw = int.from_bytes(data, "little")
        if raw == 0:
            raise CatalogError("root pointer word is uninitialized")
        self._cached = raw
        return raw

    def compare_and_swap(self, old: int, new: int) -> Generator[Any, Any, bool]:
        def op() -> Generator[Any, Any, Any]:
            qp = self.compute_server.qp(self.location.server_id)
            return (
                yield from qp.compare_and_swap(self.location.offset, old, new)
            )

        swapped, current = yield from self._failover(op)
        self._cached = new if swapped else current
        return swapped
