"""Client-side graceful degradation: retry budgets and circuit breakers.

Server-side admission control (docs/overload.md) protects the memory
servers; this module protects everything *else* from the clients' own
reaction to overload. Two classic failure amplifiers are addressed:

* **Retry storms** — a rejected request that is immediately retried adds
  offered load exactly when the server asked for less. A
  :class:`RetryBudget` makes application-level retries a scarce resource:
  successes earn fractional tokens, each retry spends one, and an empty
  budget turns retries off until the system recovers.
* **Goodput collapse** — when most requests bounce, even *sending* them
  wastes wire and client time. A :class:`CircuitBreaker` watches the
  recent outcome window and, once failures dominate, sheds load at the
  client for a cooldown period, then probes with a few trial requests
  (half-open) before fully closing again.

Both mechanisms are deterministic: decisions depend only on the outcome
sequence and the simulated clock, never on randomness or wall time, so
identical seeds replay identical shed/retry schedules
(tests/test_fault_determinism.py).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError

__all__ = ["DegradationConfig", "RetryBudget", "CircuitBreaker"]


@dataclass(frozen=True)
class DegradationConfig:
    """Tuning knobs for one tenant's client-side degradation stack."""

    #: Retry tokens earned per successful operation (a 0.1 ratio allows
    #: roughly one retry per ten successes, the classic retry-budget rule).
    retry_budget_ratio: float = 0.1
    #: Tokens granted up front so cold starts may retry at all.
    retry_budget_initial: float = 4.0
    #: Token cap — long good periods must not bank unlimited retries.
    retry_budget_max: float = 32.0
    #: Outcomes remembered by the breaker's rolling window.
    breaker_window: int = 32
    #: Minimum outcomes in the window before the breaker may trip.
    breaker_min_samples: int = 16
    #: Failure fraction in the window that trips the breaker open.
    breaker_threshold: float = 0.5
    #: Simulated seconds the breaker stays open before probing.
    breaker_cooldown_s: float = 2e-3
    #: Trial operations allowed through while half-open; one failure
    #: re-opens, all successes close.
    breaker_probes: int = 4

    def __post_init__(self) -> None:
        if self.retry_budget_ratio < 0:
            raise ConfigurationError("retry_budget_ratio must be >= 0")
        if self.retry_budget_initial < 0:
            raise ConfigurationError("retry_budget_initial must be >= 0")
        if self.retry_budget_max < self.retry_budget_initial:
            raise ConfigurationError(
                "retry_budget_max must be >= retry_budget_initial"
            )
        if self.breaker_window < 1:
            raise ConfigurationError("breaker_window must be >= 1")
        if not 1 <= self.breaker_min_samples <= self.breaker_window:
            raise ConfigurationError(
                "breaker_min_samples must be in [1, breaker_window]"
            )
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ConfigurationError("breaker_threshold must be in (0, 1]")
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError("breaker_cooldown_s must be > 0")
        if self.breaker_probes < 1:
            raise ConfigurationError("breaker_probes must be >= 1")


class RetryBudget:
    """Token bucket over *retries*: successes deposit, retries withdraw.

    Unlike the server-side admission bucket this refills from outcomes,
    not time — a client that is making no progress earns no right to
    retry, which is exactly what stops a retry storm from sustaining
    itself.
    """

    def __init__(self, config: DegradationConfig) -> None:
        self.config = config
        self.tokens = config.retry_budget_initial
        #: Retries denied because the budget was empty.
        self.exhausted = 0
        #: Retries granted.
        self.spent = 0

    def on_success(self) -> None:
        """A first-try (or retried) operation completed: earn credit."""
        self.tokens = min(
            self.config.retry_budget_max,
            self.tokens + self.config.retry_budget_ratio,
        )

    def try_spend(self) -> bool:
        """Withdraw one retry token; False (and counted) when broke."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


class CircuitBreaker:
    """Rolling-window circuit breaker (closed → open → half-open → closed).

    *now_fn* supplies the simulated clock; *on_transition(state)* fires on
    every state change so callers can mirror transitions into namscope
    (``nam_breaker_transitions_total``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        config: DegradationConfig,
        now_fn: Callable[[], float],
        on_transition: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self.now_fn = now_fn
        self.on_transition = on_transition
        self.state = self.CLOSED
        self._window: Deque[bool] = deque(maxlen=config.breaker_window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        #: Lifetime transition counts, for tests and reporting.
        self.times_opened = 0
        self.times_closed = 0

    def _transition(self, state: str) -> None:
        self.state = state
        if self.on_transition is not None:
            self.on_transition(state)

    def _open(self) -> None:
        self._opened_at = self.now_fn()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.times_opened += 1
        self._transition(self.OPEN)

    def allow(self) -> bool:
        """May the caller issue an operation right now?

        While open, arrivals are shed until the cooldown elapses; the
        breaker then goes half-open and admits ``breaker_probes`` trial
        operations whose outcomes decide between closing and re-opening.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.now_fn() - self._opened_at < self.config.breaker_cooldown_s:
                return False
            self._transition(self.HALF_OPEN)
        # Half-open: admit up to breaker_probes concurrent trials.
        if self._probes_in_flight < self.config.breaker_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record(self, success: bool) -> None:
        """Feed one operation outcome back into the breaker."""
        if self.state == self.HALF_OPEN:
            if not success:
                # A failed probe: the dependency is still sick.
                self._window.append(False)
                self._open()
                return
            self._probe_successes += 1
            if self._probe_successes >= self.config.breaker_probes:
                self._window.clear()
                self.times_closed += 1
                self._transition(self.CLOSED)
            return
        self._window.append(success)
        if self.state != self.CLOSED:
            return
        window = self._window
        if len(window) < self.config.breaker_min_samples:
            return
        failures = sum(1 for ok in window if not ok)
        if failures / len(window) >= self.config.breaker_threshold:
            self._open()
