"""Critical-path attribution: decompose an op span's wall time into segments.

The paper's whole argument is a latency decomposition (Section 2.3): which
traversal design wins depends on *where* an operation's time goes — NIC
queueing, wire flight, server queue wait, server CPU, lock spinning. While
observability is enabled, the fabric stamps ``(label, start, end)``
intervals onto the root :class:`~repro.obs.spans.OpSpan` of the operation
they belong to (see ``Observability.stamp``), and every completed verb
leaves a :class:`~repro.obs.spans.VerbEvent` window. This module turns
those raw intervals into a **closed decomposition**: a mapping from the
segment taxonomy below to seconds, whose values sum to the span's
duration — exactly, for every sampled op (the reconciliation invariant
``tests/test_obs_attribution.py`` pins).

Closed segment taxonomy (``SEGMENTS``), highest attribution priority
first — when stamps overlap, each instant of the op belongs to the
highest-priority covering label:

* ``admission_reject`` — round trips that ended in an admission bounce
  (token bucket / bounded queue), including the rejected wire legs;
* ``client_backoff`` — retry timeout detection and backoff waits, plus
  application-level re-offer backoff in the open-loop runner;
* ``lock_wait`` — spin-pause rounds waiting out somebody else's node lock
  (client-side one-sided spins and server-side worker spins alike);
* ``server_cpu`` — RPC handler execution on a memory-server worker
  (fixed dispatch cost + handler + serialization + mirror-before-ack);
* ``server_rpc_queue`` — an envelope's wait in the SRQ / bulkhead queue
  between NIC arrival and worker dequeue;
* ``nic_queue`` — doorbell-to-wire wait on a busy TX channel and
  arrival-to-drain wait on a busy RX channel;
* ``network_flight`` — wire occupancy + switch propagation of every verb
  leg (the verb windows themselves are the lowest-priority base cover,
  so un-stamped parts of a round trip land here, including the
  co-located local-copy fast path);
* ``client_think`` — the residual: time the op spent in client-side
  compute between verbs (page decode, binary search, session logic).

Attribution is a pure post-processing pass over retained span trees —
it allocates nothing on the hot path and never runs when disabled.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

__all__ = [
    "SEGMENTS",
    "SEGMENT_PRIORITY",
    "attribute_intervals",
    "attribute_span",
    "attribute_span_dict",
    "aggregate_attributions",
]

#: The closed taxonomy, in attribution-priority order (highest first).
#: ``client_think`` is the residual and never stamped explicitly.
SEGMENTS: Tuple[str, ...] = (
    "admission_reject",
    "client_backoff",
    "lock_wait",
    "server_cpu",
    "server_rpc_queue",
    "nic_queue",
    "network_flight",
    "client_think",
)

#: label -> priority rank (lower number wins an overlap).
SEGMENT_PRIORITY: Dict[str, int] = {label: i for i, label in enumerate(SEGMENTS)}

_THINK_RANK = SEGMENT_PRIORITY["client_think"]


def attribute_intervals(
    started_at: float,
    finished_at: float,
    intervals: Iterable[Tuple[str, float, float]],
) -> Dict[str, float]:
    """Decompose ``[started_at, finished_at)`` over labelled *intervals*.

    Runs a boundary sweep: the op window is cut at every (clipped)
    interval edge and each elementary slice is charged to the
    highest-priority label covering it; uncovered slices become
    ``client_think``. The returned dict has every taxonomy label (zeros
    included). ``client_think`` is computed as the exact residual
    ``duration - covered``, so the values reconcile against the span
    duration to float precision no matter how the stamps interleave.
    """
    duration = finished_at - started_at
    out = {label: 0.0 for label in SEGMENTS}
    if duration <= 0.0:
        return out
    clipped: List[Tuple[float, float, int]] = []
    for label, start, end in intervals:
        rank = SEGMENT_PRIORITY.get(label)
        if rank is None or rank >= _THINK_RANK:
            continue
        start = max(start, started_at)
        end = min(end, finished_at)
        if end > start:
            clipped.append((start, end, rank))
    if not clipped:
        out["client_think"] = duration
        return out
    boundaries = sorted(
        {start for start, _end, _rank in clipped}
        | {end for _start, end, _rank in clipped}
    )
    # Sweep the elementary slices between consecutive boundaries; active
    # intervals are tracked by a sort-merge (intervals sorted by start).
    clipped.sort(key=lambda item: item[0])
    active: List[Tuple[float, float, int]] = []
    next_interval = 0
    covered = 0.0
    for i in range(len(boundaries) - 1):
        lo = boundaries[i]
        hi = boundaries[i + 1]
        while next_interval < len(clipped) and clipped[next_interval][0] <= lo:
            active.append(clipped[next_interval])
            next_interval += 1
        if active:
            active = [item for item in active if item[1] > lo]
        best = _THINK_RANK
        for _start, _end, rank in active:
            if rank < best:
                best = rank
        if best < _THINK_RANK:
            width = hi - lo
            out[SEGMENTS[best]] += width
            covered += width
    residual = duration - covered
    if residual > 0.0:
        out["client_think"] = residual
    elif residual < 0.0:
        # Float rounding pushed the covered total a hair past the span
        # duration; shave the excess off the largest bucket so the
        # decomposition still sums to the duration.
        largest = max(out, key=lambda label: out[label])
        out[largest] += residual
    return out


def _collect_intervals(
    verbs: Iterable[Mapping[str, Any]],
    segments: Iterable[Tuple[str, float, float]],
) -> List[Tuple[str, float, float]]:
    intervals: List[Tuple[str, float, float]] = [
        (label, float(start), float(end)) for label, start, end in segments
    ]
    for verb in verbs:
        intervals.append(
            ("network_flight", verb["started_at"], verb["finished_at"])
        )
    return intervals


def attribute_span(span: Any) -> Dict[str, float]:
    """Attribution of one retained :class:`~repro.obs.spans.OpSpan` tree.

    Stamped segments live on the root span; verb windows are collected
    from the whole subtree as the lowest-priority ``network_flight``
    base cover.
    """
    finished = span.finished_at if span.finished_at is not None else span.started_at
    verbs = [
        {"started_at": event.started_at, "finished_at": event.finished_at}
        for node in span.iter_spans()
        for event in node.verbs
    ]
    return attribute_intervals(
        span.started_at, finished, _collect_intervals(verbs, span.segments)
    )


def _iter_span_dicts(span: Mapping[str, Any]) -> Iterable[Mapping[str, Any]]:
    yield span
    for child in span.get("children", ()):
        yield from _iter_span_dicts(child)


def attribute_span_dict(span: Mapping[str, Any]) -> Dict[str, float]:
    """Same as :func:`attribute_span`, over a JSON-decoded span dict (the
    shape :meth:`OpSpan.as_dict` exports — what snapshots and flight
    bundles carry)."""
    started = span["started_at"]
    finished = span["finished_at"]
    if finished is None:
        finished = started
    verbs = [
        {"started_at": verb["started_at"], "finished_at": verb["finished_at"]}
        for node in _iter_span_dicts(span)
        for verb in node.get("verbs", ())
    ]
    segments = [
        (segment[0], segment[1], segment[2])
        for segment in span.get("segments", ())
    ]
    return attribute_intervals(
        started, finished, _collect_intervals(verbs, segments)
    )


def aggregate_attributions(
    attributions: Iterable[Mapping[str, float]],
) -> Dict[str, float]:
    """Mean share (fraction of op duration) per segment over many ops.

    Each op is normalized to its own duration first so a single slow op
    cannot drown the population — the result answers "where does a
    typical op in this set spend its time".
    """
    totals = {label: 0.0 for label in SEGMENTS}
    count = 0
    for attribution in attributions:
        duration = sum(attribution.get(label, 0.0) for label in SEGMENTS)
        if duration <= 0.0:
            continue
        count += 1
        for label in SEGMENTS:
            totals[label] += attribution.get(label, 0.0) / duration
    if count == 0:
        return totals
    return {label: totals[label] / count for label in SEGMENTS}
