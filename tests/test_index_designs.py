"""Behavioural tests run identically against all three index designs."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    CoarseGrainedIndex,
    FineGrainedIndex,
    HybridIndex,
)

DESIGN_CLASSES = [CoarseGrainedIndex, FineGrainedIndex, HybridIndex]


def build(cls, cluster, dataset, name="idx", **kwargs):
    if cls is FineGrainedIndex:
        return cls.build(cluster, name, dataset.pairs(), **kwargs)
    return cls.build(
        cluster, name, dataset.pairs(), key_space=dataset.key_space, **kwargs
    )


@pytest.fixture(params=DESIGN_CLASSES, ids=lambda cls: cls.design)
def setup(request, dataset):
    cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=3))
    index = build(request.param, cluster, dataset)
    session = index.session(cluster.new_compute_server())
    return cluster, dataset, index, session


class TestLookup:
    def test_existing_keys(self, setup):
        cluster, dataset, _index, session = setup
        for ordinal in (0, 1, 999, 1999):
            key = dataset.key_at(ordinal)
            assert cluster.execute(session.lookup(key)) == [ordinal]

    def test_missing_keys(self, setup):
        cluster, dataset, _index, session = setup
        assert cluster.execute(session.lookup(3)) == []  # gap key
        assert cluster.execute(session.lookup(dataset.key_space + 100)) == []

    def test_lookup_registers_in_catalog(self, setup):
        cluster, _dataset, index, _session = setup
        descriptor = cluster.catalog.lookup(index.name)
        assert descriptor.design == index.design


class TestRangeScan:
    def test_full_scan(self, setup):
        cluster, dataset, _index, session = setup
        got = cluster.execute(session.range_scan(0, dataset.key_space))
        assert got == dataset.pairs()

    def test_interior_scan_sorted(self, setup):
        cluster, dataset, _index, session = setup
        low, high = dataset.key_at(500), dataset.key_at(700)
        got = cluster.execute(session.range_scan(low, high))
        assert got == [(dataset.key_at(i), i) for i in range(500, 700)]

    def test_cross_partition_scan(self, setup):
        """A scan spanning partition boundaries merges correctly."""
        cluster, dataset, _index, session = setup
        low = dataset.key_at(400)  # partition width is 500 keys
        high = dataset.key_at(1600)
        got = cluster.execute(session.range_scan(low, high))
        assert got == [(dataset.key_at(i), i) for i in range(400, 1600)]

    def test_empty_range(self, setup):
        cluster, _dataset, _index, session = setup
        assert cluster.execute(session.range_scan(5, 5)) == []


class TestInsert:
    def test_insert_new_key(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(100) + 1  # a gap key
        cluster.execute(session.insert(key, 12345))
        assert cluster.execute(session.lookup(key)) == [12345]

    def test_insert_duplicate(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(50)
        cluster.execute(session.insert(key, 999))
        assert sorted(cluster.execute(session.lookup(key))) == [50, 999]

    def test_inserts_visible_in_scans(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(10) + 3
        cluster.execute(session.insert(key, 777))
        got = cluster.execute(session.range_scan(dataset.key_at(10), dataset.key_at(12)))
        assert (key, 777) in got

    def test_many_inserts_trigger_splits(self, setup):
        cluster, dataset, _index, session = setup
        base = dataset.key_at(300)
        for i in range(200):
            cluster.execute(session.insert(base + 1 + (i % 7), 1000 + i))
        total = cluster.execute(
            session.range_scan(base, base + 8)
        )
        assert len(total) == 201  # 200 inserts + the original key


class TestUpdate:
    def test_update_existing(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(321)
        assert cluster.execute(session.update(key, 777)) is True
        assert cluster.execute(session.lookup(key)) == [777]

    def test_update_missing_returns_false(self, setup):
        cluster, _dataset, _index, session = setup
        assert cluster.execute(session.update(5, 1)) is False

    def test_update_replaces_only_one_duplicate(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(60)
        cluster.execute(session.insert(key, 999))
        assert cluster.execute(session.update(key, 111)) is True
        assert sorted(cluster.execute(session.lookup(key))) == [111, 999]

    def test_update_after_delete_misses(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(61)
        cluster.execute(session.delete(key))
        assert cluster.execute(session.update(key, 5)) is False


class TestDelete:
    def test_delete_existing(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(123)
        assert cluster.execute(session.delete(key)) is True
        assert cluster.execute(session.lookup(key)) == []

    def test_delete_missing(self, setup):
        cluster, _dataset, _index, session = setup
        assert cluster.execute(session.delete(5)) is False

    def test_deleted_keys_skipped_by_scans(self, setup):
        cluster, dataset, _index, session = setup
        key = dataset.key_at(800)
        cluster.execute(session.delete(key))
        got = cluster.execute(
            session.range_scan(dataset.key_at(799), dataset.key_at(802))
        )
        assert all(k != key for k, _v in got)


class TestConcurrency:
    def test_parallel_inserts_all_land(self, setup):
        cluster, dataset, index, _session = setup
        compute = cluster.new_compute_server()
        sessions = [index.session(compute) for _ in range(20)]

        def client(cid, sess):
            for i in range(30):
                key = dataset.key_at((cid * 37 + i * 13) % dataset.num_keys) + 1
                yield from sess.insert(key, cid * 100 + i)

        procs = [cluster.spawn(client(cid, sess))
                 for cid, sess in enumerate(sessions)]
        cluster.sim.run_until_complete(cluster.sim.all_of(procs))
        got = cluster.execute(
            sessions[0].range_scan(0, dataset.key_space)
        )
        assert len(got) == dataset.num_keys + 20 * 30

    def test_readers_race_writers_without_errors(self, setup):
        cluster, dataset, index, _session = setup
        compute = cluster.new_compute_server()

        def writer(sess):
            for i in range(40):
                yield from sess.insert(dataset.key_at(i * 17 % 500) + 2, i)

        def reader(sess):
            total = 0
            for i in range(40):
                values = yield from sess.lookup(dataset.key_at(i * 29 % 500))
                total += len(values)
            return total

        writers = [cluster.spawn(writer(index.session(compute))) for _ in range(5)]
        readers = [cluster.spawn(reader(index.session(compute))) for _ in range(5)]
        cluster.sim.run_until_complete(cluster.sim.all_of(writers + readers))
        for proc in readers:
            assert proc.value == 40  # every original key found exactly once
