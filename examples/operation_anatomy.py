"""The wire anatomy of index operations, design by design.

The clearest way to understand the paper's design space is to watch the
verbs: this example traces a point lookup, a range scan, and an insert on
each of the three designs and prints every RDMA operation with its
timing — the coarse-grained design's single RPC, the fine-grained
design's chain of page READs and lock atomics, and the hybrid's RPC + leaf
READ mix.

Run with: ``python examples/operation_anatomy.py``
"""

from repro import (
    Cluster,
    ClusterConfig,
    CoarseGrainedIndex,
    FineGrainedIndex,
    HybridIndex,
)
from repro.rdma.tracing import VerbTracer

NUM_KEYS = 20_000


def trace(title, cluster, operation):
    with VerbTracer(cluster) as tracer:
        start = cluster.now
        cluster.execute(operation)
        total_us = (cluster.now - start) * 1e6
    print(f"\n--- {title}  ({total_us:.2f} us end to end) ---")
    print(tracer.format())


def main() -> None:
    pairs = [(key * 8, key) for key in range(NUM_KEYS)]
    key_space = NUM_KEYS * 8

    for design_cls in (CoarseGrainedIndex, FineGrainedIndex, HybridIndex):
        cluster = Cluster(ClusterConfig(num_memory_servers=4))
        if design_cls is FineGrainedIndex:
            index = design_cls.build(cluster, "anatomy", pairs)
        else:
            index = design_cls.build(
                cluster, "anatomy", pairs, key_space=key_space
            )
        session = index.session(cluster.new_compute_server())
        # Warm the session (root-pointer fetch happens once, like a real
        # client consulting the catalog at query-compile time).
        cluster.execute(session.lookup(0))

        print(f"\n================ {index.design} ================")
        trace("point lookup", cluster, session.lookup(8_000))
        trace("range scan of 200 keys", cluster,
              session.range_scan(8_000, 8_000 + 200 * 8))
        trace("insert", cluster, session.insert(8_001, 42))


if __name__ == "__main__":
    main()
