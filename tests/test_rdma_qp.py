"""Tests for queue pairs: verbs, RPC, traffic accounting, local fast path."""

import pytest

from repro import Cluster
from repro.nam.rpc import AckResponse, PointLookupRequest
from repro.rdma.verbs import Verb


@pytest.fixture
def wired(cluster):
    compute = cluster.new_compute_server()
    return cluster, compute


def test_read_returns_region_bytes(wired):
    cluster, compute = wired
    server = cluster.memory_server(0)
    server.region.write(4096, b"payload!")
    data = cluster.execute(compute.qp(0).read(4096, 8))
    assert data == b"payload!"


def test_read_latency_at_least_two_propagations(wired):
    cluster, compute = wired
    start = cluster.now
    cluster.execute(compute.qp(0).read(0, 1024))
    elapsed = cluster.now - start
    assert elapsed >= 2 * cluster.config.network.one_way_latency_s


def test_write_lands_in_remote_region(wired):
    cluster, compute = wired
    cluster.execute(compute.qp(1).write(8192, b"abcd"))
    assert cluster.memory_server(1).region.read(8192, 4) == b"abcd"


def test_atomics_over_the_wire(wired):
    cluster, compute = wired
    server = cluster.memory_server(2)
    server.region.write_u64(64, 7)
    swapped, old = cluster.execute(compute.qp(2).compare_and_swap(64, 7, 9))
    assert swapped and old == 7
    old = cluster.execute(compute.qp(2).fetch_and_add(64, 3))
    assert old == 9
    assert server.region.read_u64(64) == 12


def test_verb_stats_recorded(wired):
    cluster, compute = wired
    server = cluster.memory_server(0)
    cluster.execute(compute.qp(0).read(0, 512))
    cluster.execute(compute.qp(0).write(0, b"x" * 128))
    cluster.execute(compute.qp(0).fetch_and_add(0, 1))
    assert server.stats.ops[Verb.READ] == 1
    assert server.stats.bytes[Verb.READ] == 512
    assert server.stats.ops[Verb.WRITE] == 1
    assert server.stats.bytes[Verb.WRITE] == 128
    assert server.stats.ops[Verb.FETCH_ADD] == 1


def test_port_traffic_counts_wire_bytes(wired):
    cluster, compute = wired
    server = cluster.memory_server(0)
    tx0, rx0 = server.port.traffic()
    cluster.execute(compute.qp(0).read(0, 1000))
    tx1, rx1 = server.port.traffic()
    assert tx1 - tx0 >= 1000  # payload leaves through the server's TX
    assert rx1 - rx0 > 0  # the request came in through RX


def test_rpc_roundtrip(wired):
    cluster, compute = wired
    server = cluster.memory_server(0)

    def handler(srv, msg):
        yield srv.cpu(1e-6)
        response = AckResponse(ok=(msg.key == 42))
        return response, response.wire_bytes

    server.register_handler(PointLookupRequest, handler)
    request = PointLookupRequest("idx", 42)
    response = cluster.execute(compute.qp(0).call(request, request.wire_bytes))
    assert response.ok is True


def test_rpc_workers_limit_concurrency(wired):
    """With one slow handler per core, extra requests queue."""
    cluster, compute = wired
    server = cluster.memory_server(0)
    cores = cluster.config.cpu.cores_per_server
    service = 10e-6

    def handler(srv, msg):
        yield srv.cpu(service)
        response = AckResponse()
        return response, response.wire_bytes

    server.register_handler(PointLookupRequest, handler)
    request = PointLookupRequest("idx", 1)

    def caller():
        yield from compute.qp(0).call(request, request.wire_bytes)

    procs = [cluster.spawn(caller()) for _ in range(2 * cores)]
    cluster.sim.run_until_complete(cluster.sim.all_of(procs))
    # Two batches of `cores` requests: at least 2x the service time.
    assert cluster.now >= 2 * service


def test_local_fast_path_skips_nic(small_config):
    from repro import Cluster

    config = small_config.with_(colocated=True)
    cluster = Cluster(config)
    compute = cluster.new_compute_server()
    local_ids = [
        server.server_id
        for server in cluster.memory_servers
        if server.machine is compute.machine
    ]
    assert local_ids, "co-located compute server shares a machine"
    server = cluster.memory_server(local_ids[0])
    tx0, rx0 = server.port.traffic()
    start = cluster.now
    cluster.execute(compute.qp(local_ids[0]).read(0, 1024))
    local_elapsed = cluster.now - start
    assert server.port.traffic() == (tx0, rx0)  # no NIC traffic
    assert local_elapsed < 2 * cluster.config.network.one_way_latency_s


def test_unknown_rpc_type_raises(wired):
    cluster, compute = wired
    server = cluster.memory_server(0)

    def handler(srv, msg):
        response = AckResponse()
        return response, response.wire_bytes
        yield  # pragma: no cover

    server.register_handler(AckResponse, handler)  # wrong type on purpose
    request = PointLookupRequest("idx", 1)
    from repro.errors import NetworkError

    with pytest.raises(NetworkError, match="no handler"):
        cluster.execute(compute.qp(0).call(request, request.wire_bytes))
