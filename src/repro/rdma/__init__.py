"""Simulated RDMA substrate: registered memory, NICs, fabric, queue pairs."""

from repro.rdma.fabric import Fabric
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import Nic, NicPort
from repro.rdma.qp import QueuePair, RpcEnvelope
from repro.rdma.verbs import Verb, VerbStats

__all__ = [
    "Fabric",
    "MemoryRegion",
    "Nic",
    "NicPort",
    "QueuePair",
    "RpcEnvelope",
    "Verb",
    "VerbStats",
]
