"""Remote-memory access events and their collector.

Every effect a verb applies to a registered region — one-sided READ /
WRITE / CAS / FETCH_AND_ADD from a queue pair, or a memory-server
worker's local page access — can be recorded as an :class:`AccessEvent`.
The stream is totally ordered by the discrete-event simulator (effects
are instantaneous), which is exactly the property the happens-before
analysis in :mod:`repro.analysis.namsan.sanitizer` needs: it replays the
events in ``seq`` order and asks which pairs were *actually* ordered by
synchronization rather than by scheduling luck.

Attaching a :class:`TraceCollector` to a cluster is pure recording — no
simulation events are created, no timing changes, and with none attached
the emission hooks are a single ``is None`` test (the same pattern as
:class:`~repro.rdma.tracing.VerbTracer`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List

from repro.errors import AnalysisError

__all__ = ["AccessEvent", "TraceCollector", "KIND_READ", "KIND_WRITE", "KIND_ATOMIC"]

#: Plain load of a byte range (optimistic page reads, root refreshes).
KIND_READ = "read"
#: Plain store of a byte range (page installs, unlock page write-backs).
KIND_WRITE = "write"
#: 8-byte atomic RMW (CAS / FETCH_AND_ADD) — a synchronization operation.
KIND_ATOMIC = "atomic"

_KINDS = (KIND_READ, KIND_WRITE, KIND_ATOMIC)


@dataclass(frozen=True)
class AccessEvent:
    """One remote-memory effect, as the sanitizer sees it.

    ``actor`` identifies the thread of execution: ``c<id>`` for a compute
    server's one-sided verbs, ``s<id>`` for a memory server's RPC
    workers. ``server`` is the *logical* memory server owning the bytes
    (stable across failover), so ``(server, offset, length)`` names a
    byte range of authoritative remote memory. ``lock_epoch`` carries the
    pre-operation value of the word for atomics — for lock words this is
    the version/owner-tag state the operation observed, which is what a
    :class:`~repro.analysis.namsan.sanitizer.RaceReport` prints.
    """

    seq: int
    actor: str
    kind: str
    verb: str
    server: int
    offset: int
    length: int
    time: float
    lock_epoch: int = 0
    label: str = ""

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "AccessEvent") -> bool:
        return (
            self.server == other.server
            and self.offset < other.end
            and other.offset < self.end
        )

    def describe(self) -> str:
        where = f"server {self.server} [{self.offset:#x}, {self.end:#x})"
        tail = f" {self.label}" if self.label else ""
        return (
            f"#{self.seq} {self.actor} {self.verb} ({self.kind}) {where} "
            f"at t={self.time * 1e6:.2f}us{tail}"
        )


class TraceCollector:
    """Collects :class:`AccessEvent` objects from a cluster's fabric.

    Use as a context manager around a workload, or attach/detach
    explicitly::

        collector = TraceCollector()
        collector.attach(cluster)
        ...run workload...
        collector.detach(cluster)
        races = detect_races(collector.events)

    The collector hooks two emission points: the fabric (one-sided verbs
    from every queue pair) and each memory server (worker-local page
    access through :class:`~repro.index.accessors.LocalAccessor`).
    """

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []
        self._cluster = None

    # -- attachment ----------------------------------------------------------

    def attach(self, cluster) -> "TraceCollector":
        """Start recording every remote-memory effect on *cluster*."""
        cluster.fabric.sanitizer = self
        for server in cluster.memory_servers:
            server.sanitizer = self
        self._cluster = cluster
        return self

    def detach(self, cluster=None) -> None:
        cluster = cluster if cluster is not None else self._cluster
        if cluster is None:
            return
        if cluster.fabric.sanitizer is self:
            cluster.fabric.sanitizer = None
        for server in cluster.memory_servers:
            if server.sanitizer is self:
                server.sanitizer = None
        self._cluster = None

    def __enter__(self) -> "TraceCollector":
        if self._cluster is None:
            raise AnalysisError("attach(cluster) before entering the collector")
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        actor: str,
        kind: str,
        verb: str,
        server: int,
        offset: int,
        length: int,
        time: float,
        lock_epoch: int = 0,
        label: str = "",
    ) -> None:
        self.events.append(
            AccessEvent(
                seq=len(self.events),
                actor=actor,
                kind=kind,
                verb=verb,
                server=server,
                offset=offset,
                length=length,
                time=time,
                lock_epoch=lock_epoch,
                label=label,
            )
        )

    def clear(self) -> None:
        self.events.clear()

    # -- persistence (the ``namsan sanitize`` CLI input format) --------------

    def dump(self, path: str) -> int:
        """Write the trace as JSON lines; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(asdict(event)) + "\n")
        return len(self.events)


def load_trace(path: str) -> List[AccessEvent]:
    """Read a JSONL trace written by :meth:`TraceCollector.dump`."""
    events: List[AccessEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                event = AccessEvent(**record)
            except (ValueError, TypeError) as exc:
                raise AnalysisError(
                    f"{path}:{lineno}: not a valid trace record: {exc}"
                ) from None
            if event.kind not in _KINDS:
                raise AnalysisError(
                    f"{path}:{lineno}: unknown event kind {event.kind!r}"
                )
            events.append(event)
    return events


def resequence(events: List[AccessEvent]) -> List[AccessEvent]:
    """Return *events* sorted into trace order (``seq``)."""
    return sorted(events, key=lambda event: event.seq)
