"""Smoke tests: every example script runs end to end.

The examples are the library's front door; they must never rot. Each is
executed in-process (patched ``sys.argv`` where needed) at its default or
a reduced scale.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

pytestmark = pytest.mark.filterwarnings("ignore")


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "coarse-grained" in out
    assert "fine-grained" in out
    assert "hybrid" in out
    assert "lookup(4000)" in out


def test_secondary_index_orders(capsys):
    run_example("secondary_index_orders.py")
    out = capsys.readouterr().out
    assert "customer 1234 has 4 orders" in out
    assert "epoch GC removed" in out


def test_ycsb_comparison(capsys):
    run_example("ycsb_comparison.py", ["--clients", "10", "--keys", "2000"])
    out = capsys.readouterr().out
    assert "workload A" in out
    assert "workload D" in out


def test_operation_anatomy(capsys):
    run_example("operation_anatomy.py")
    out = capsys.readouterr().out
    assert "point lookup" in out
    assert "send" in out and "read" in out
    assert "fine-grained" in out


def test_capacity_planning(capsys):
    run_example("capacity_planning.py")
    out = capsys.readouterr().out
    assert "memory servers needed" in out
    assert "fine-grained" in out
