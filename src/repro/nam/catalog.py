"""The catalog service.

The paper notes (Section 4.2) that compute servers learn each index's root
pointer "as part of a catalog service that is anyway used during query
compilation". The catalog here records, per index: the design kind, the
partitioning function (if any), and where each root pointer word lives.
Catalog lookups model that compile-time metadata access and are free at
run time — root pointers themselves are cached and refreshed through RDMA
when a traversal discovers they are stale (B-link trees tolerate stale
roots, see :class:`repro.btree.accessor.RootRef`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import CatalogError

__all__ = ["RootLocation", "IndexDescriptor", "Catalog"]


@dataclass(frozen=True)
class RootLocation:
    """Where one root-pointer word lives: ``(server_id, byte offset)``."""

    server_id: int
    offset: int


@dataclass
class IndexDescriptor:
    """Everything a compute server needs to open a session on an index."""

    name: str
    design: str  # "coarse-grained" | "fine-grained" | "hybrid"
    #: Root-pointer words: one per partition for CG/hybrid (keyed by memory
    #: server id), a single entry keyed by the home server for FG.
    roots: Dict[int, RootLocation] = field(default_factory=dict)
    partitioner: Optional[object] = None
    use_head_nodes: bool = False
    #: Monotone counter of structure modifications (splits, separator
    #: installs, root growth) applied to this index's *inner* levels.
    #: Client-side node caches compare the epoch an image was filled under
    #: against the current value: images from older epochs are revalidated
    #: (1-verb READ of the version word) instead of trusted outright. Like
    #: every catalog field this is compile-time metadata — reading it is
    #: free at run time (see module docstring).
    structure_epoch: int = 0


class Catalog:
    """Cluster-wide registry of index descriptors."""

    def __init__(self) -> None:
        self._indexes: Dict[str, IndexDescriptor] = {}
        #: Directory epoch for server indirection. Bumped by the
        #: replication manager on every failover; compute servers
        #: re-resolve logical-server routes whenever a cached queue
        #: pair's epoch lags this value.
        self.epoch = 0

    def register(self, descriptor: IndexDescriptor) -> None:
        if descriptor.name in self._indexes:
            raise CatalogError(f"index {descriptor.name!r} already registered")
        self._indexes[descriptor.name] = descriptor

    def lookup(self, name: str) -> IndexDescriptor:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def bump_structure_epoch(self, name: str) -> int:
        """Record an inner-level SMO on index *name*; returns the new epoch.

        Called by the B-link trees of writers (client-side for FG, the
        partition owner for hybrid) right after a separator install or a
        root swing completes. Unknown names are a :class:`CatalogError` —
        a bump for a dropped index means a tree handle outlived its index.
        """
        descriptor = self.lookup(name)
        descriptor.structure_epoch += 1
        return descriptor.structure_epoch

    def structure_epoch(self, name: str) -> int:
        """Current structure epoch of index *name*."""
        return self.lookup(name).structure_epoch

    def drop(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self._indexes[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._indexes)

    def __contains__(self, name: str) -> bool:
        return name in self._indexes
