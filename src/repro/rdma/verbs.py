"""RDMA verb vocabulary and traffic statistics.

The paper's designs use five verbs (Section 2.1): one-sided READ, WRITE,
CAS, FETCH_AND_ADD, and two-sided SEND/RECEIVE. :class:`VerbStats` counts
operations and payload bytes per verb so experiments can report network
utilization (Figure 9) and verb mixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Verb", "VerbStats"]


class Verb(enum.Enum):
    """The RDMA operations used by the index designs."""

    READ = "read"
    WRITE = "write"
    CAS = "cas"
    FETCH_ADD = "fetch_add"
    SEND = "send"

    # Enum's default __hash__ is a Python-level function and Verb members
    # key the per-verb stats dicts on every completed WQE; identity hash is
    # equivalent (members are singletons) and stays in C.
    __hash__ = object.__hash__


@dataclass
class VerbStats:
    """Per-verb operation and byte counters.

    ``bytes`` counts application payload (page/message bytes), not wire
    headers; wire-level totals come from the NIC port channels.
    """

    ops: Dict[Verb, int] = field(default_factory=lambda: {v: 0 for v in Verb})
    bytes: Dict[Verb, int] = field(default_factory=lambda: {v: 0 for v in Verb})

    def record(self, verb: Verb, payload_bytes: int) -> None:
        self.ops[verb] += 1
        self.bytes[verb] += payload_bytes

    @property
    def total_ops(self) -> int:
        return sum(self.ops.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def snapshot(self) -> "VerbStats":
        """An independent copy (for warm-up deltas)."""
        return VerbStats(ops=dict(self.ops), bytes=dict(self.bytes))

    def delta(self, earlier: "VerbStats") -> "VerbStats":
        """Counters accumulated since *earlier* was snapshotted."""
        return VerbStats(
            ops={v: self.ops[v] - earlier.ops[v] for v in Verb},
            bytes={v: self.bytes[v] - earlier.bytes[v] for v in Verb},
        )
