"""Figure 15 (Appendix A.3): effect of co-locating compute and memory.

Compares the distributed NAM deployment against a co-located one (compute
servers on the memory machines, shared-nothing style) for the coarse- and
fine-grained designs, 80 clients, uniform data, point queries and range
queries. With one compute server per memory machine, 1/num_machines of all
accesses become local memory accesses; the paper reports a similar
constant-factor gain for all workloads.

Run with ``python -m repro.experiments.fig15_colocation``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import format_rate, print_table, run_cell
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.workloads import RunResult, workload_a, workload_b

__all__ = ["run", "print_figure", "main", "DESIGNS_FIG15"]

DESIGNS_FIG15 = ("fine-grained", "coarse-grained")

#: (design, workload name, colocated)
Key = Tuple[str, str, bool]


def run(scale: ExperimentScale = DEFAULT, num_clients: int = 80) -> Dict[Key, RunResult]:
    """Run this experiment's grid; returns the per-cell results."""
    specs = [workload_a()] + [workload_b(sel) for sel in scale.selectivities]
    results: Dict[Key, RunResult] = {}
    for spec in specs:
        for design in DESIGNS_FIG15:
            for colocated in (False, True):
                results[(design, spec.name, colocated)] = run_cell(
                    design, spec, num_clients, scale, colocated=colocated
                )
    return results


def print_figure(results: Dict[Key, RunResult], scale: ExperimentScale) -> None:
    """Print the paper-shaped series for *results*."""
    specs = [workload_a()] + [workload_b(sel) for sel in scale.selectivities]
    for spec in specs:
        rows = {}
        for design in DESIGNS_FIG15:
            distributed = results[(design, spec.name, False)].throughput
            colocated = results[(design, spec.name, True)].throughput
            gain = colocated / distributed if distributed else float("nan")
            rows[design] = [
                format_rate(distributed),
                format_rate(colocated),
                f"{gain:.2f}x",
            ]
        print_table(
            f"Figure 15 - workload {spec.name}: distributed vs. co-located "
            "(80 clients, uniform)",
            ["distributed", "co-located", "gain"],
            rows,
            col_header="",
        )


def main() -> None:
    """CLI entry point."""
    results = run()
    print_figure(results, DEFAULT)


if __name__ == "__main__":
    main()
