"""A small discrete-event simulation kernel.

The kernel follows the well-known *process interaction* style (as popularized
by SimPy): model code is written as Python generators that ``yield`` events;
the simulator advances virtual time, fires events, and resumes the waiting
generators. The kernel is deliberately minimal — just what the RDMA fabric
and NAM cluster models need:

* :class:`Event` — a one-shot occurrence carrying a value or an exception.
* :class:`Timeout` — an event that fires after a virtual-time delay.
* :class:`Process` — wraps a generator; itself an event that fires when the
  generator returns (its value is the generator's return value).
* :class:`Condition` — ``all_of`` / ``any_of`` composition, used e.g. for
  head-node prefetching where several RDMA READs are issued in parallel.
* :class:`Simulator` — the event loop and virtual clock.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotonically increasing sequence number breaks ties), so a seeded run is
fully reproducible.

Engine speed (docs/performance.md "engine profiling"): the queue is a
two-lane calendar — a plain FIFO deque for events triggered *at the current
instant* (zero delay: process bootstraps, ``succeed`` chains, RPC handoffs —
the majority of all events) and a binary heap for everything in the future.
Deque entries carry ``(sequence, event)``; because the clock only advances
when the instant lane is dry, every deque entry's timestamp is exactly
``now``, and comparing the deque front's sequence number against the heap
front reproduces the global ``(time, sequence)`` order of a single heap
while the common case pays ``append``/``popleft`` instead of two
``O(log n)`` sift passes. Fired ``Event``/``Timeout``/``Condition`` objects
whose last external reference died with their firing (checked with
``sys.getrefcount`` — conservative: any surviving reference, e.g. a pending
``any_of`` sibling or model code that kept the handle, keeps the object out
of the pool) are recycled through per-simulator free-lists, so the
steady-state hot path allocates no event objects at all.

Schedule control: a :class:`Simulator` optionally carries a *scheduler* —
any object with a ``choose(at, ready)`` method and an optional ``window``
attribute (virtual seconds, default 0; sampled when the scheduler is
attached). Whenever two or more events are ready within ``window`` of the
earliest queued event, the kernel hands the scheduler the ready list (in
``(time, sequence)`` order) and fires the entry whose index it returns; the
rest stay queued and are offered again. Choosing a later entry *defers* the
earlier ones — they fire after it, at an unchanged virtual timestamp (the
clock never runs backwards; deferred events model scheduling jitter the
fabric is allowed to exhibit). Nothing ever fires early, and an event is
only ever queued once its causes have fired, so causal chains are
preserved. With no scheduler attached (the default) the behavior is
byte-identical to the plain heap order, and a scheduler with ``window == 0``
that returns ``0`` from ``choose`` reproduces it. This is the hook the
namsan schedule explorer (:mod:`repro.analysis.namsan.explore`) uses to
enumerate interleavings of concurrent client processes at synchronization
points. Attaching a scheduler flushes the instant lane into the heap and
routes all queueing there, so ``choose`` always sees the complete ready set.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Simulator",
]

#: Type alias for model code: a generator that yields events.
ProcessGenerator = Generator["Event", Any, Any]

_PENDING = object()

#: Per-simulator free-list size cap (objects, per class). Big enough to
#: absorb the burstiest fan-out in the experiment grids, small enough that
#: an idle simulator pins a few KB at most.
_POOL_CAP = 4096


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail`, after which the simulator fires its callbacks at the
    current virtual time. Processes that ``yield`` a pending event are
    suspended until it fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_is_error", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._is_error = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and not self._is_error

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        self._value = value
        self.sim._queue_fire(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, which will be re-raised in
        every process waiting on it."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._value = exception
        self._is_error = True
        self.sim._queue_fire(self)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)
        if self._is_error and not self._defused:
            # An un-waited-for failure must not pass silently.
            raise self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event fires (immediately if fired)."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` virtual seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._value = value
        self.sim._queue_fire(self, delay)


class Process(Event):
    """A running model process; fires when its generator returns.

    The process drives its generator by sending each yielded event's value
    back in (or throwing the event's exception). The generator's ``return``
    value becomes the process event's value, so processes compose: one
    process may ``yield`` another and receive its result.
    """

    __slots__ = ("_generator", "_killed", "span")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator) -> None:
        super().__init__(sim)
        self._generator = generator
        self._killed = False
        #: Observability attribution: the deepest open span of the
        #: operation this process works for, or None. Inherited from the
        #: spawning process, so fan-out sub-processes (parallel reads,
        #: batch chunks) report into their operation's span tree. The
        #: kernel never reads this — it only carries it.
        parent = sim._active
        self.span = parent.span if parent is not None else None
        # Kick the process off at the current instant (the bootstrap event
        # comes from the free-list when one is available).
        free = sim._free_events
        bootstrap = free.pop() if free else Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def kill(self) -> None:
        """Abandon the process at its current suspension point.

        Models a crash: the generator is closed (``GeneratorExit`` is
        raised at its current ``yield``, so ``finally`` blocks still run),
        no further model effects happen, and the process event fires with
        ``None`` so joins (``all_of``) on it do not deadlock. Killing a
        completed or already-killed process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        self._generator.close()
        self.succeed(None)

    def _resume(self, fired: Event) -> None:
        if self._killed:
            # A crash left this callback registered on an in-flight event;
            # swallow the wake-up (and defuse failures aimed at a corpse).
            if fired._is_error:
                fired._defused = True
            return
        # While the generator runs, this process is the simulator's active
        # process — the anchor observability uses to attribute events
        # (verbs, span steps) to the operation being executed.
        sim = self.sim
        previous = sim._active
        sim._active = self
        generator = self._generator
        try:
            while True:
                try:
                    if fired._is_error:
                        fired._defused = True
                        target = generator.throw(fired.value)
                    else:
                        target = generator.send(fired._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # model code raised
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    self.fail(
                        SimulationError(
                            f"process yielded {target!r}, which is not an Event"
                        )
                    )
                    return
                if target.callbacks is None:
                    # Already fired: loop and resume immediately without
                    # recursing (keeps deep chains iterative).
                    fired = target
                    continue
                target.callbacks.append(self._resume)
                return
        finally:
            sim._active = previous


class Condition(Event):
    """Composite event over several child events.

    With ``wait_all=True`` it fires once every child has fired (value: list
    of child values, in the original order). With ``wait_all=False`` it
    fires as soon as any child fires (value: that child's value). A failing
    child fails the condition.
    """

    __slots__ = ("_events", "_wait_all", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event], wait_all: bool) -> None:
        super().__init__(sim)
        self._attach(events, wait_all)

    def _attach(self, events: Iterable[Event], wait_all: bool) -> None:
        """(Re)arm over *events* — shared by ``__init__`` and pool reuse."""
        self._events = list(events)
        self._wait_all = wait_all
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([] if wait_all else None)
            return
        on_child = self._on_child
        for event in self._events:
            event.add_callback(on_child)

    def _on_child(self, child: Event) -> None:
        if self._value is not _PENDING:
            if child._is_error:
                child._defused = True
            return
        if child._is_error:
            child._defused = True
            self.fail(child.value)
            return
        self._remaining -= 1
        if not self._wait_all:
            self.succeed(child._value)
        elif self._remaining == 0:
            self.succeed([event.value for event in self._events])


class Simulator:
    """The event loop and virtual clock.

    Typical use::

        sim = Simulator()

        def model():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(model())
        sim.run()
        assert proc.value == "done" and sim.now == 1.0
    """

    def __init__(self, scheduler: Optional[Any] = None) -> None:
        self.now: float = 0.0
        #: Far lane: ``(time, sequence, event)`` entries with a positive
        #: delay (and, while a scheduler is attached, *all* entries).
        self._heap: List[Any] = []
        #: Instant lane: ``(sequence, event)`` entries triggered at the
        #: current instant. Invariant: every entry's timestamp is exactly
        #: ``now`` — the clock only advances once this lane is dry.
        self._dq: "deque[Any]" = deque()
        self._sequence = 0
        self._scheduler: Optional[Any] = None
        self._window = 0.0
        #: Free-lists of fired, unreferenced event objects, reused by
        #: :meth:`event`, :meth:`timeout`, :meth:`all_of`/:meth:`any_of`
        #: and process bootstraps.
        self._free_events: List[Event] = []
        self._free_timeouts: List[Timeout] = []
        self._free_conditions: List[Condition] = []
        self.scheduler = scheduler
        #: The :class:`Process` currently driving its generator, or None
        #: (between events, or while firing non-process callbacks). Spawned
        #: processes inherit their ``span`` from it; observability reads it
        #: to attribute verbs to operations. Purely passive bookkeeping —
        #: it never influences scheduling.
        self._active: Optional[Process] = None

    # -- event factories ---------------------------------------------------

    @property
    def events_scheduled(self) -> int:
        """Total events queued so far — the simulator's work counter.

        Dividing it by the wall-clock seconds a run took gives the
        engine's events/s rate, the metric the batching benchmark uses to
        detect host-side (non-simulated-time) regressions.
        """
        return self._sequence

    @property
    def scheduler(self) -> Optional[Any]:
        """Optional tie-breaking policy: an object with
        ``choose(at: float, ready: List[(at, seq, Event)]) -> int``,
        consulted whenever >= 2 events are ready within its ``window`` of
        the earliest one. ``ready`` is sorted by sequence number; index 0
        reproduces the default order. May be attached/detached at any
        point between events (the explorer attaches it only around the
        concurrent phase of a scenario); the ``window`` attribute is
        sampled at attach time. None = plain deterministic heap order.
        """
        return self._scheduler

    @scheduler.setter
    def scheduler(self, value: Optional[Any]) -> None:
        self._scheduler = value
        if value is None:
            self._window = 0.0
            return
        self._window = getattr(value, "window", 0.0)
        # Flush the instant lane so ``choose`` sees one complete ready
        # set; while attached, _queue_fire routes everything to the heap.
        dq = self._dq
        heap = self._heap
        now = self.now
        while dq:
            seq, event = dq.popleft()
            heapq.heappush(heap, (now, seq, event))

    def event(self) -> Event:
        """A fresh untriggered event (a mailbox another process can fire)."""
        free = self._free_events
        if free:
            return free.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* virtual seconds from now."""
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            timeout = free.pop()
            timeout._value = value
            self._queue_fire(timeout, delay)
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start *generator* as a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event firing once all *events* fired; value is their value list."""
        free = self._free_conditions
        if free:
            condition = free.pop()
            condition._attach(events, True)
            return condition
        return Condition(self, events, wait_all=True)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event firing once any of *events* fired."""
        free = self._free_conditions
        if free:
            condition = free.pop()
            condition._attach(events, False)
            return condition
        return Condition(self, events, wait_all=False)

    # -- scheduling & the loop ---------------------------------------------

    def _queue_fire(self, event: Event, delay: float = 0.0) -> None:
        seq = self._sequence + 1
        self._sequence = seq
        if delay == 0.0 and self._scheduler is None:
            self._dq.append((seq, event))
        else:
            heapq.heappush(self._heap, (self.now + delay, seq, event))

    def _recycle(self, event: Event) -> None:
        """Pool *event* for reuse if its firing dropped the last reference.

        Called right after ``event._fire()`` with exactly two references
        alive (the caller's local + the refcount probe's argument): any
        additional reference — model code that kept the handle, a pending
        ``any_of`` sibling's callback, a heap entry — keeps the object out
        of the pool, so recycling is conservative and invisible. Only the
        three concrete high-churn classes are pooled; a :class:`Process`
        owns a generator and is never reused.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._free_timeouts
        elif cls is Event:
            pool = self._free_events
        elif cls is Condition:
            pool = self._free_conditions
            event._events = ()
            event._remaining = 0
        else:
            return
        if len(pool) < _POOL_CAP:
            event.callbacks = []
            event._value = _PENDING
            event._is_error = False
            event._defused = False
            pool.append(event)

    def _pop_choice(self, at: float, until: Optional[float] = None) -> Any:
        """Pop the next entry to fire, letting the attached scheduler pick
        among all entries ready within its ``window`` of the earliest one
        (never reaching past *until*). The entries not chosen are pushed
        back and offered again at the next step, so one ``choose`` call
        resolves one firing, not the whole group."""
        heap = self._heap
        limit = at + self._window
        if until is not None and limit > until:
            limit = until
        # Fast path: the root's children (the only candidates for the
        # second-earliest entry) are both beyond the window, so exactly
        # one entry is ready — no list, no ``choose`` call.
        size = len(heap)
        if size == 1 or (
            heap[1][0] > limit and (size < 3 or heap[2][0] > limit)
        ):
            return heapq.heappop(heap)
        ready = [heapq.heappop(heap)]
        while heap and heap[0][0] <= limit:
            ready.append(heapq.heappop(heap))
        if len(ready) > 1:
            index = self._scheduler.choose(at, ready)
            if not 0 <= index < len(ready):
                index = 0
        else:
            index = 0
        chosen = ready.pop(index)
        for entry in ready:
            heapq.heappush(heap, entry)
        return chosen

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock passes *until*.

        When stopped by *until*, the clock is set exactly to *until* and any
        events scheduled later stay queued (``run`` may be called again).
        """
        dq = self._dq
        heap = self._heap
        pop = heapq.heappop
        while dq or heap:
            if self._scheduler is None:
                if dq and (
                    not heap
                    or heap[0][0] > self.now
                    or heap[0][1] > dq[0][0]
                ):
                    if until is not None and self.now > until:
                        self.now = until
                        return
                    event = dq.popleft()[1]
                else:
                    at = heap[0][0]
                    if until is not None and at > until:
                        self.now = until
                        return
                    event = pop(heap)[2]
                    self.now = at
            else:
                at = heap[0][0]
                if until is not None and at > until:
                    self.now = until
                    return
                at, _seq, event = self._pop_choice(at, until)
                # A deferred entry may carry a timestamp the clock already
                # passed; it fires late, the clock never runs backwards.
                if at > self.now:
                    self.now = at
            event._fire()
            if getrefcount(event) == 2:
                self._recycle(event)
        if until is not None and until > self.now:
            self.now = until

    def run_until_complete(self, target: Event) -> Any:
        """Run until *target* fires and return its value.

        Raises :class:`SimulationError` if the queue drains first (a
        deadlock in model code), or re-raises the event's exception if it
        failed.
        """
        dq = self._dq
        heap = self._heap
        pop = heapq.heappop
        while target._value is _PENDING:
            if self._scheduler is None:
                if dq and (
                    not heap
                    or heap[0][0] > self.now
                    or heap[0][1] > dq[0][0]
                ):
                    event = dq.popleft()[1]
                elif heap:
                    at, _seq, event = pop(heap)
                    self.now = at
                else:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(model deadlock?)"
                    )
            else:
                if not heap and not dq:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(model deadlock?)"
                    )
                at, _seq, event = self._pop_choice(heap[0][0])
                if at > self.now:
                    self.now = at
            event._fire()
            if getrefcount(event) == 2:
                self._recycle(event)
        if target._is_error:
            target._defused = True
            raise target.value
        return target.value
