"""Result containers and summary statistics for workload runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["OpType", "RunResult", "TenantOutcome"]


class OpType:
    """Operation categories recorded by the runner."""

    POINT = "point"
    RANGE = "range"
    INSERT = "insert"
    DELETE = "delete"
    #: Operation that surfaced a typed fault (timeout / retries exhausted).
    #: Deliberately not part of ``ALL``: errored operations count in
    #: :attr:`RunResult.errors`, never in throughput or latency figures.
    ERROR = "error"
    ALL = (POINT, RANGE, INSERT, DELETE)


@dataclass
class TenantOutcome:
    """One tenant's view of an open-loop run's measurement window.

    Produced by :class:`~repro.workloads.openloop.OpenLoopRunner`; keyed
    by tenant name in :attr:`RunResult.tenants`. "Accepted" means the
    operation completed successfully inside the window; offered arrivals
    that were still in flight at the window edge count in ``offered``
    only.
    """

    tenant: str
    #: Arrivals the generator produced inside the window (open loop: this
    #: is independent of what the system managed to serve).
    offered: int = 0
    #: Operations that completed successfully inside the window.
    accepted: int = 0
    #: Operations the servers bounced (admission control / rate limit).
    rejected: int = 0
    #: Arrivals shed client-side before issuing (open circuit breaker).
    shed: int = 0
    #: Operations that surfaced a typed fault (timeouts, failovers).
    errored: int = 0
    #: Latencies (seconds) of the accepted operations.
    latencies: List[float] = field(default_factory=list)
    #: This tenant's p99 latency target; None = no SLO contract.
    slo_p99_s: Optional[float] = None

    def latency_percentile(self, percentile: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.percentile(self.latencies, percentile))

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(99)

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of accepted operations meeting the p99 target; the SLO
        holds when this is >= 0.99. None without a target or samples."""
        if self.slo_p99_s is None or not self.latencies:
            return None
        met = sum(1 for lat in self.latencies if lat <= self.slo_p99_s)
        return met / len(self.latencies)


@dataclass
class RunResult:
    """Measured outcome of one workload run (one design, one client count).

    All rates are computed over the measurement window only (after
    warm-up); latencies are per completed operation, in seconds.
    """

    design: str
    workload: str
    num_clients: int
    window_s: float
    op_counts: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-memory-server (bytes_tx, bytes_rx) over the window.
    network: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Per-memory-server mean RPC-worker utilization over the window.
    cpu_utilization: Dict[int, float] = field(default_factory=dict)
    #: Typed-fault counts (``{"TimeoutError_": n, ...}``) for operations
    #: that failed inside the window. Empty unless faults were injected.
    errors: Dict[str, int] = field(default_factory=dict)
    #: Raw per-operation ``(op_type, start_s, end_s)`` records for the
    #: whole run (not just the window). Populated only when the runner is
    #: asked for them (``keep_records=True``) — availability experiments
    #: use these to plot throughput dips and recovery times around crashes.
    raw_records: List[Tuple[str, float, float]] = field(default_factory=list)
    #: Total verb/RPC retry attempts recorded by the observability
    #: registry over the whole run. Stays 0 when observability is off
    #: (the registry is the only place retries are counted per verb).
    retries: int = 0
    #: Full observability snapshot (metrics + sampled/slow span trees),
    #: straight from :meth:`repro.obs.hub.Observability.snapshot`. None
    #: unless the cluster was built with observability enabled.
    observability: Optional[Dict[str, Any]] = None
    #: Open-loop accounting (docs/overload.md). All zero/empty for
    #: closed-loop runs, where offered load equals completed load by
    #: construction. ``offered_ops`` counts generator arrivals inside the
    #: window; ``rejected_ops`` server-side admission bounces;
    #: ``shed_ops`` arrivals dropped client-side by an open breaker.
    offered_ops: int = 0
    rejected_ops: int = 0
    shed_ops: int = 0
    #: Engine speed: simulator events processed per *wall-clock* second
    #: while this run executed. Host-dependent (never part of golden
    #: fingerprints); 0.0 unless the harness timed the run and filled it
    #: in (the engine benchmark's headline metric, docs/performance.md).
    wall_steps_per_s: float = 0.0
    #: Per-tenant outcomes of an open-loop run, keyed by tenant name.
    tenants: Dict[str, TenantOutcome] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    @property
    def accepted_ops(self) -> int:
        """Operations completed inside the window — the goodput numerator.
        Alias of :attr:`total_ops` under the open-loop vocabulary."""
        return self.total_ops

    @property
    def slo_attainment(self) -> Optional[float]:
        """Worst per-tenant SLO attainment (the binding tenant), or None
        when no tenant carries a latency target."""
        attainments = [
            outcome.slo_attainment
            for outcome in self.tenants.values()
            if outcome.slo_attainment is not None
        ]
        return min(attainments) if attainments else None

    @property
    def goodput(self) -> float:
        """Successfully served operations per second (= throughput; named
        for the overload experiments where offered >> served)."""
        return self.throughput

    @property
    def errored_ops(self) -> int:
        """Operations that surfaced a typed fault inside the window."""
        return sum(self.errors.values())

    @property
    def throughput(self) -> float:
        """Completed operations per second (the paper's "Lookups/s")."""
        if self.window_s <= 0:
            return 0.0
        return self.total_ops / self.window_s

    def throughput_of(self, op_type: str) -> float:
        if self.window_s <= 0:
            return 0.0
        return self.op_counts.get(op_type, 0) / self.window_s

    @property
    def network_bytes(self) -> int:
        return sum(tx + rx for tx, rx in self.network.values())

    @property
    def network_gb_per_s(self) -> float:
        """Aggregate memory-server traffic (the paper's Figure 9 metric)."""
        if self.window_s <= 0:
            return 0.0
        return self.network_bytes / self.window_s / 1e9

    def latency_mean(self, op_type: str) -> float:
        samples = self.latencies.get(op_type)
        return float(np.mean(samples)) if samples else float("nan")

    def latency_percentile(self, op_type: str, percentile: float) -> float:
        samples = self.latencies.get(op_type)
        if not samples:
            return float("nan")
        return float(np.percentile(samples, percentile))

    def summary(self) -> str:
        parts = [
            f"{self.design} / {self.workload} / {self.num_clients} clients:",
            f"{self.throughput:,.0f} ops/s",
            f"{self.network_gb_per_s:.3f} GB/s",
        ]
        for op_type in OpType.ALL:
            if self.op_counts.get(op_type):
                parts.append(
                    f"{op_type} p50={self.latency_percentile(op_type, 50) * 1e6:.1f}us"
                )
        return "  ".join(parts)
