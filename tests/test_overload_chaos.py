"""Multi-tenant flash crowd under chaos: faults + failover + admission.

The ISSUE's combined acceptance scenario: an open-loop flash crowd slams
an admission-controlled hybrid cluster while the fault injector drops
and delays messages and crashes a replicated memory server mid-window.
The B-link structural verifier (:func:`repro.index.verify.verify_index`)
is the oracle, and the cross-tenant contract — the flood never drags the
interactive tenant's SLO down — is asserted directly against the
per-tenant outcome records.

Runs under ``pytest --namsan`` in CI (the overload chaos matrix).
"""

from __future__ import annotations

import pytest

from repro import (
    AdmissionConfig,
    Cluster,
    ClusterConfig,
    FaultPlan,
    HybridIndex,
    ServerCrash,
    verify_index,
)
from repro.config import CpuConfig, ObservabilityConfig
from repro.workloads import (
    ArrivalProcess,
    DegradationConfig,
    OpenLoopRunner,
    TenantSpec,
    WorkloadSpec,
    generate_dataset,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.errors.ConfigurationWarning"
)

PLAN = FaultPlan(
    seed=61,
    drop_probability=0.02,
    delay_probability=0.05,
    delay_s=20e-6,
    duplicate_probability=0.02,
    server_crashes=(ServerCrash(1, at_s=0.002, down_for_s=0.001),),
)

INTERACTIVE_SLO_S = 500e-6


def _tenants(flood_multiplier=15.0):
    flood_arrivals = ArrivalProcess(
        rate_ops_per_s=100_000.0,
        burst_multiplier=flood_multiplier,
        burst_start_s=0.0,
        burst_duration_s=1.0,
    )
    return [
        TenantSpec(
            name="interactive",
            workload=WorkloadSpec(name="reads", point_fraction=1.0),
            arrivals=ArrivalProcess(rate_ops_per_s=40_000.0),
            slo_p99_s=INTERACTIVE_SLO_S,
            degradation=DegradationConfig(),
            max_op_retries=2,
            sessions=8,
        ),
        TenantSpec(
            name="flood",
            workload=WorkloadSpec(
                name="mixed", point_fraction=0.9, insert_fraction=0.1
            ),
            arrivals=flood_arrivals,
            sessions=16,
        ),
    ]


def _chaos_run(admission, seed=19):
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=2,
            memory_servers_per_machine=1,
            replication_factor=2,
            seed=43,
            cpu=CpuConfig(cores_per_server=2),
            admission=admission,
            observability=ObservabilityConfig(enabled=True),
        )
    )
    dataset = generate_dataset(600, gap=4)
    index = HybridIndex.build(cluster, "idx", dataset.pairs())
    injector = cluster.attach_faults(PLAN)
    runner = OpenLoopRunner(cluster, dataset)
    result = runner.run(
        index,
        _tenants(),
        warmup_s=0.001,
        measure_s=0.004,
        seed=seed,
        drain=True,
    )
    injector.quiesce()
    return cluster, index, injector, result


ADMISSION = AdmissionConfig(
    enabled=True,
    max_queue_depth=8,
    tenant_rate_ops={"flood": 30_000.0},
    tenant_burst_ops=8.0,
    bulkhead_workers={"flood": 1},
)


class TestFlashCrowdChaos:
    def test_admission_survives_crowd_plus_crash(self):
        cluster, index, injector, result = _chaos_run(ADMISSION)

        # The chaos actually happened: messages dropped, a replicated
        # server crashed and failed over, the flood got bounced.
        assert injector.stats["server_crashes"] == 1
        assert injector.stats["drops"] > 0
        flood = result.tenants["flood"]
        assert flood.rejected > 0

        # The structural oracle: B-link invariants and replica equality
        # hold after the crowd, the crash, and the drain.
        report = verify_index(cluster, index)
        assert report.ok, report

        # Cross-tenant contract: the interactive tenant rode out both the
        # flash crowd and the failover inside its SLO, serving nearly all
        # of its offered arrivals.
        interactive = result.tenants["interactive"]
        assert interactive.accepted > 0
        assert interactive.slo_attainment is not None
        assert interactive.slo_attainment >= 0.99, interactive
        assert interactive.accepted >= 0.8 * interactive.offered, interactive
        # Faults may cost it some errored ops, but never rejections — the
        # flood is the only rate-limited, bulkheaded tenant.
        assert interactive.rejected == 0

    def test_uncontrolled_crowd_degrades_the_interactive_tenant(self):
        # The negative control: same crowd, same faults, no admission.
        # Without bulkheads the flood's queueing delay exhausts the
        # interactive tenant's verb retries (timeouts) and trips its
        # circuit breaker — most arrivals end up shed or errored instead
        # of served. The SLO is violated through starvation, not through
        # the (survivor-biased) latency of the few ops that got through.
        cluster, index, injector, result = _chaos_run(AdmissionConfig())
        assert injector.stats["server_crashes"] == 1
        report = verify_index(cluster, index)
        assert report.ok, report
        interactive = result.tenants["interactive"]
        assert interactive.accepted < 0.5 * interactive.offered, interactive
        assert interactive.errored > 0
        assert interactive.shed > 0  # breaker opened mid-crowd
        # Nothing was rejected — the damage is pure queueing delay.
        assert result.rejected_ops == 0

    def test_chaos_run_replays_byte_identically(self):
        def fingerprint():
            _cluster, _index, injector, result = _chaos_run(ADMISSION)
            lines = [repr(sorted(injector.stats.items()))]
            for name, outcome in sorted(result.tenants.items()):
                lines.append(
                    f"{name}: off={outcome.offered} acc={outcome.accepted} "
                    f"rej={outcome.rejected} shed={outcome.shed} "
                    f"err={outcome.errored} "
                    + ",".join(f"{lat:.12e}" for lat in outcome.latencies)
                )
            return "\n".join(lines)

        assert fingerprint().encode() == fingerprint().encode()
