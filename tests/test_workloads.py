"""Tests for dataset generation, distributions, specs, and the runner."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import Cluster, ClusterConfig, FineGrainedIndex
from repro.errors import ConfigurationError
from repro.workloads import (
    OpType,
    UniformChooser,
    WorkloadRunner,
    ZipfianChooser,
    generate_dataset,
    make_chooser,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
)
from repro.workloads.distributions import ScrambledZipfianChooser


class TestDataset:
    def test_geometry(self):
        ds = generate_dataset(100, gap=8)
        assert ds.key_space == 800
        assert ds.key_at(5) == 40
        pairs = ds.pairs()
        assert pairs[0] == (0, 0)
        assert pairs[-1] == (792, 99)
        assert len(pairs) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_dataset(0)
        with pytest.raises(ConfigurationError):
            generate_dataset(10, gap=0)


class TestDistributions:
    def test_uniform_covers_space(self):
        chooser = UniformChooser(100, np.random.default_rng(0))
        seen = {chooser.next_index() for _ in range(5000)}
        assert len(seen) > 95
        assert min(seen) >= 0 and max(seen) < 100

    def test_zipfian_is_skewed(self):
        chooser = ZipfianChooser(10_000, np.random.default_rng(0))
        draws = [chooser.next_index() for _ in range(20_000)]
        top_hundred = sum(1 for d in draws if d < 100)
        assert top_hundred > len(draws) * 0.3  # hot head
        assert all(0 <= d < 10_000 for d in draws)

    def test_scrambled_zipfian_spreads_hot_keys(self):
        chooser = ScrambledZipfianChooser(10_000, np.random.default_rng(0))
        draws = [chooser.next_index() for _ in range(5000)]
        assert all(0 <= d < 10_000 for d in draws)
        # Hot items are no longer the small indices.
        assert sum(1 for d in draws if d < 100) < len(draws) * 0.2

    def test_make_chooser_factory(self):
        rng = np.random.default_rng(0)
        assert isinstance(make_chooser("uniform", 10, rng), UniformChooser)
        assert isinstance(make_chooser("zipfian", 10, rng), ZipfianChooser)
        with pytest.raises(ConfigurationError):
            make_chooser("bogus", 10, rng)

    def test_zipf_determinism(self):
        a = ZipfianChooser(1000, np.random.default_rng(7))
        b = ZipfianChooser(1000, np.random.default_rng(7))
        assert [a.next_index() for _ in range(100)] == [
            b.next_index() for _ in range(100)
        ]


class TestSpecs:
    def test_standard_workloads_match_table3(self):
        assert workload_a().point_fraction == 1.0
        b = workload_b(0.01)
        assert b.range_fraction == 1.0 and b.selectivity == 0.01
        c = workload_c()
        assert (c.point_fraction, c.insert_fraction) == (0.95, 0.05)
        d = workload_d()
        assert (d.point_fraction, d.insert_fraction) == (0.5, 0.5)

    def test_fractions_must_sum_to_one(self):
        from repro.workloads import WorkloadSpec

        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", point_fraction=0.5)

    def test_insert_pattern_validated(self):
        from repro.workloads import WorkloadSpec

        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", insert_fraction=1.0, insert_pattern="x")


class TestRunner:
    @pytest.fixture
    def rig(self):
        ds = generate_dataset(2000)
        cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=2))
        index = FineGrainedIndex.build(cluster, "idx", ds.pairs())
        return cluster, ds, index

    def test_point_workload_counts_and_latencies(self, rig):
        cluster, ds, index = rig
        runner = WorkloadRunner(cluster, ds)
        result = runner.run(index, workload_a(), num_clients=10,
                            warmup_s=0.0005, measure_s=0.002)
        assert result.op_counts.get(OpType.POINT, 0) > 0
        assert result.op_counts.get(OpType.INSERT, 0) == 0
        assert result.throughput > 0
        assert result.latency_mean(OpType.POINT) > 0
        assert result.latency_percentile(OpType.POINT, 99) >= (
            result.latency_percentile(OpType.POINT, 50)
        )

    def test_mixed_workload_respects_fractions(self, rig):
        cluster, ds, index = rig
        runner = WorkloadRunner(cluster, ds)
        result = runner.run(index, workload_d(), num_clients=20,
                            warmup_s=0.0005, measure_s=0.004)
        points = result.op_counts.get(OpType.POINT, 0)
        inserts = result.op_counts.get(OpType.INSERT, 0)
        assert points + inserts > 100
        assert 0.3 < points / (points + inserts) < 0.7

    def test_network_counters_populate(self, rig):
        cluster, ds, index = rig
        runner = WorkloadRunner(cluster, ds)
        result = runner.run(index, workload_b(0.01), num_clients=10,
                            warmup_s=0.0005, measure_s=0.002)
        assert result.network_gb_per_s > 0
        assert set(result.network) == {0, 1, 2, 3}

    def test_populations_mix_clients(self, rig):
        cluster, ds, index = rig
        runner = WorkloadRunner(cluster, ds)
        result = runner.run(
            index,
            populations=[(workload_a(), 5), (workload_b(0.001), 5)],
            warmup_s=0.0005,
            measure_s=0.002,
        )
        assert result.num_clients == 10
        assert result.op_counts.get(OpType.POINT, 0) > 0
        assert result.op_counts.get(OpType.RANGE, 0) > 0

    def test_append_pattern_issues_monotonic_keys(self, rig):
        cluster, ds, index = rig
        from repro.workloads import WorkloadSpec

        spec = WorkloadSpec(name="ap", insert_fraction=1.0,
                            insert_pattern="append")
        runner = WorkloadRunner(cluster, ds)
        runner.run(index, spec, num_clients=4, warmup_s=0.0005,
                   measure_s=0.001)
        session = index.session(cluster.new_compute_server())
        appended = cluster.execute(
            session.range_scan(ds.key_space, ds.key_space + 10_000)
        )
        keys = [k for k, _v in appended]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))  # unique, gap-free sequence
        assert keys[0] == ds.key_space

    def test_delete_workload_runs_with_background_gc(self, rig):
        from repro.workloads import workload_e

        cluster, ds, index = rig
        compute = cluster.new_compute_server()
        gc = index.start_gc(compute, epoch_s=0.0005)
        runner = WorkloadRunner(cluster, ds)
        result = runner.run(index, workload_e(0.3), num_clients=10,
                            warmup_s=0.0005, measure_s=0.003)
        gc.stopped = True
        assert result.op_counts.get(OpType.DELETE, 0) > 0
        assert result.op_counts.get(OpType.POINT, 0) > 0
        # GC swept at least once during the run and the tree stayed sound.
        assert gc.sweeps >= 1
        tree = index.tree_for(compute)
        cluster.execute(tree.validate())

    def test_workload_e_fractions(self):
        from repro.workloads import workload_e

        spec = workload_e(0.4)
        assert spec.point_fraction == pytest.approx(0.6)
        assert spec.delete_fraction == 0.4

    def test_runner_requires_spec_or_populations(self, rig):
        cluster, ds, index = rig
        runner = WorkloadRunner(cluster, ds)
        with pytest.raises(ConfigurationError):
            runner.run(index)

    def test_deterministic_given_seed(self):
        def once():
            ds = generate_dataset(1000)
            cluster = Cluster(ClusterConfig(num_memory_servers=2, seed=5))
            index = FineGrainedIndex.build(cluster, "idx", ds.pairs())
            runner = WorkloadRunner(cluster, ds)
            result = runner.run(index, workload_c(), num_clients=8,
                                warmup_s=0.0005, measure_s=0.002, seed=99)
            return result.total_ops, result.op_counts

        assert once() == once()
