"""N02 — every remote-lock acquire must release on all control-flow paths.

An abstract interpreter over function bodies. The lock protocol in this
codebase has a fixed shape (the paper's Listings 2-4)::

    locked = yield from self.acc.try_lock(raw_ptr, node.version)
    if not locked:
        ...          # lock NOT held on this branch
        return False
    ...              # lock held from here on
    yield from self.acc.unlock_write(raw_ptr, node)   # or unlock_nochange

The checker tracks a single symbolic lock (writers lock exactly one node
at a time) through assignments, conditionals on the acquire result,
loops, and try/finally, and reports any function exit — ``return``,
``raise``, ``break``/``continue`` (a loop-back re-acquires), or falling
off the end — that can be reached with the lock still held.

Releases are recognized by attribute name (``unlock_write`` /
``unlock_nochange``) *or* by calling a local function that itself
releases on every path (e.g. ``self._split_and_insert(...)``, which
always writes-and-unlocks the node it was handed); that delegate set is
computed in a first pass over the module.

Deliberate scope limits (documented in docs/namsan.md): the walk follows
explicit control flow only. Exceptions *propagating out of calls* inside
a critical section are not modeled — at runtime those are covered by the
lock-lease recovery protocol, which is itself exercised by the chaos
suite. Accessor implementations (functions named ``try_lock`` /
``unlock_*``) and pure delegations (``return ...try_lock(...)``) are
exempt: they forward the caller's responsibility, not acquire for
themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import List, Optional, Set, Tuple

__all__ = ["check_lock_pairing", "releasing_functions"]

ACQUIRE_NAMES = {"try_lock"}
RELEASE_NAMES = {"unlock_write", "unlock_nochange"}
#: Functions whose *name* marks them as accessor-layer implementations.
IMPLEMENTATION_NAMES = ACQUIRE_NAMES | RELEASE_NAMES


@dataclass
class _State:
    """One abstract path: is the lock held, and which variable holds a
    not-yet-branched try_lock result?"""

    held: Optional[int] = None          # acquire line number, or None
    pending: Optional[Tuple[str, int]] = None  # (variable, acquire line)

    def fork(self) -> "_State":
        return replace(self)


@dataclass
class _Exit:
    kind: str          # "return" | "raise" | "break" | "continue" | "fall"
    state: _State
    line: int


@dataclass
class _Report:
    violations: List[Tuple[int, str]] = field(default_factory=list)

    def add(self, line: int, message: str) -> None:
        self.violations.append((line, message))


def _call_name(node: ast.AST) -> Optional[str]:
    """The trailing attribute/function name of a call, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _calls_in(node: ast.AST) -> List[str]:
    return [
        name
        for call in ast.walk(node)
        for name in (_call_name(call),)
        if name is not None
    ]


def _contains_acquire(node: ast.AST) -> Optional[int]:
    for call in ast.walk(node):
        name = _call_name(call)
        if name in ACQUIRE_NAMES:
            return call.lineno
    return None


def _contains_release(node: ast.AST, delegates: Set[str]) -> bool:
    return any(
        name in RELEASE_NAMES or name in delegates for name in _calls_in(node)
    )


class _FunctionChecker:
    def __init__(self, func: ast.FunctionDef, delegates: Set[str]) -> None:
        self.func = func
        self.delegates = delegates
        self.report = _Report()

    # -- statement walk ------------------------------------------------------

    def run(self) -> List[Tuple[int, str]]:
        exits = self._walk_block(self.func.body, _State())
        for exit_ in exits:
            if exit_.kind in ("break", "continue"):
                # Loop control at function top level is a syntax error;
                # treat defensively as a fall-through.
                exit_ = _Exit("fall", exit_.state, exit_.line)
            self._check_resolved(exit_.state, exit_.line, f"at {exit_.kind}")
        return self.report.violations

    def _check_resolved(self, state: _State, line: int, where: str) -> None:
        if state.held is not None:
            self.report.add(
                line,
                f"lock acquired at line {state.held} may still be held {where}",
            )
        elif state.pending is not None:
            variable, acquired = state.pending
            self.report.add(
                line,
                f"try_lock result '{variable}' (line {acquired}) never "
                f"checked/released before {where}",
            )

    def _walk_block(self, stmts: List[ast.stmt], state: _State) -> List[_Exit]:
        """Process *stmts* for every live path; returns all exits (paths
        ending in return/raise/break/continue plus the fall-throughs)."""
        live = [state]
        exits: List[_Exit] = []
        for stmt in stmts:
            next_live: List[_State] = []
            for path in live:
                stmt_exits = self._walk_stmt(stmt, path)
                for exit_ in stmt_exits:
                    if exit_.kind == "fall":
                        next_live.append(exit_.state)
                    else:
                        exits.append(exit_)
            live = next_live
            if not live:
                break
        last_line = stmts[-1].lineno if stmts else self.func.lineno
        exits.extend(_Exit("fall", path, last_line) for path in live)
        return exits

    def _walk_stmt(self, stmt: ast.stmt, state: _State) -> List[_Exit]:
        line = stmt.lineno
        if isinstance(stmt, ast.Return):
            # `return (yield from acc.try_lock(...))` is a delegating
            # wrapper: the acquire belongs to the caller.
            if stmt.value is not None:
                self._apply_effects(stmt.value, state, ignore_acquire=True)
            return [_Exit("return", state, line)]
        if isinstance(stmt, ast.Raise):
            return [_Exit("raise", state, line)]
        if isinstance(stmt, ast.Break):
            return [_Exit("break", state, line)]
        if isinstance(stmt, ast.Continue):
            return [_Exit("continue", state, line)]
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, state)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._walk_loop(stmt, state)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._apply_effects(item.context_expr, state)
            return self._walk_block(stmt.body, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [_Exit("fall", state, line)]  # nested defs are separate scopes
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                acquired_line = self._apply_effects(value, state)
                if acquired_line is not None:
                    target = self._single_name_target(stmt)
                    if target is not None:
                        if state.held is not None or state.pending is not None:
                            self.report.add(
                                acquired_line,
                                "second try_lock while a lock is already "
                                "held/pending (writers lock one node at a time)",
                            )
                        state.pending = (target, acquired_line)
                    else:
                        # Result not captured in a simple variable:
                        # assume the lock is held unconditionally.
                        state.held = acquired_line
            return [_Exit("fall", state, line)]
        if isinstance(stmt, ast.Expr):
            acquired_line = self._apply_effects(stmt.value, state)
            if acquired_line is not None:
                # Acquire whose result is discarded: held, success unchecked.
                state.held = acquired_line
            return [_Exit("fall", state, line)]
        # Anything else (pass, assert, import, global, delete...) — scan
        # for effects conservatively.
        self._apply_effects(stmt, state)
        return [_Exit("fall", state, line)]

    # -- composite statements ------------------------------------------------

    def _walk_if(self, stmt: ast.If, state: _State) -> List[_Exit]:
        branch = self._lock_condition(stmt.test, state)
        if branch is not None:
            held_if_true, acquired = branch
            then_state = state.fork()
            else_state = state.fork()
            then_state.pending = else_state.pending = None
            if held_if_true:
                then_state.held = acquired
                else_state.held = None
            else:
                then_state.held = None
                else_state.held = acquired
        else:
            self._apply_effects(stmt.test, state)
            then_state = state.fork()
            else_state = state.fork()
        exits = self._walk_block(stmt.body, then_state)
        if stmt.orelse:
            exits += self._walk_block(stmt.orelse, else_state)
        else:
            exits.append(_Exit("fall", else_state, stmt.lineno))
        return exits

    def _lock_condition(
        self, test: ast.expr, state: _State
    ) -> Optional[Tuple[bool, int]]:
        """If *test* is ``X`` / ``not X`` for the pending try_lock result
        variable, return (lock-held-when-test-true, acquire line)."""
        if state.pending is None:
            return None
        variable, acquired = state.pending
        if isinstance(test, ast.Name) and test.id == variable:
            return True, acquired
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id == variable
        ):
            return False, acquired
        return None

    def _walk_loop(self, stmt: ast.stmt, state: _State) -> List[_Exit]:
        if isinstance(stmt, ast.While):
            self._apply_effects(stmt.test, state)
        else:
            self._apply_effects(stmt.iter, state)
        body_exits = self._walk_block(stmt.body, state.fork())
        exits: List[_Exit] = []
        after_states = [state.fork()]  # zero-iteration path
        for exit_ in body_exits:
            if exit_.kind in ("continue", "fall"):
                # Loop-back edge: the next iteration re-enters the body
                # fresh, so the lock must be resolved here.
                self._check_resolved(
                    exit_.state, exit_.line, "at loop iteration end"
                )
            elif exit_.kind == "break":
                after_states.append(exit_.state)
            else:
                exits.append(exit_)
        if stmt.orelse:
            for after in after_states:
                exits += self._walk_block(stmt.orelse, after)
        else:
            exits.extend(_Exit("fall", after, stmt.lineno) for after in after_states)
        return exits

    def _walk_try(self, stmt: ast.Try, state: _State) -> List[_Exit]:
        finally_releases = any(
            _contains_release(s, self.delegates) for s in stmt.finalbody
        )
        body_exits = self._walk_block(stmt.body, state.fork())
        handler_exits: List[_Exit] = []
        for handler in stmt.handlers:
            handler_exits += self._walk_block(handler.body, state.fork())
        exits: List[_Exit] = []
        for exit_ in body_exits + handler_exits:
            if finally_releases:
                exit_.state.held = None
                exit_.state.pending = None
            if exit_.kind == "fall" and stmt.orelse and exit_ in body_exits:
                exits += self._walk_block(stmt.orelse, exit_.state)
            else:
                exits.append(exit_)
        return exits

    # -- expression effects --------------------------------------------------

    def _apply_effects(
        self, node: ast.AST, state: _State, ignore_acquire: bool = False
    ) -> Optional[int]:
        """Apply release/acquire calls found inside *node* to *state*.

        Returns the acquire line if an acquire call is present (and not
        ignored); releases are applied in place.
        """
        acquired: Optional[int] = None
        for call in ast.walk(node):
            name = _call_name(call)
            if name is None:
                continue
            if name in RELEASE_NAMES or name in self.delegates:
                state.held = None
                state.pending = None
            elif name in ACQUIRE_NAMES and not ignore_acquire:
                acquired = call.lineno
        return acquired

    def _single_name_target(self, stmt: ast.stmt) -> Optional[str]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
        else:
            return None
        if isinstance(target, ast.Name):
            return target.id
        return None


# --------------------------------------------------------------------------- #
# module-level driving                                                         #
# --------------------------------------------------------------------------- #

def _functions(tree: ast.Module) -> List[ast.FunctionDef]:
    found: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(node)
    return found


def releasing_functions(tree: ast.Module) -> Set[str]:
    """Names of local functions that release a held lock on every path.

    Iterates to a fixpoint so a delegate may itself delegate. A function
    qualifies when, entered with the lock held, every non-raising exit
    has released it.
    """
    delegates: Set[str] = set()
    functions = _functions(tree)
    changed = True
    while changed:
        changed = False
        for func in functions:
            if func.name in delegates or func.name in IMPLEMENTATION_NAMES:
                continue
            if not _contains_release(func, delegates):
                continue
            checker = _FunctionChecker(func, delegates)
            entry = _State(held=func.lineno)
            exits = checker._walk_block(func.body, entry)
            if all(
                exit_.state.held is None
                for exit_ in exits
                if exit_.kind != "raise"
            ) and checker.report.violations == []:
                delegates.add(func.name)
                changed = True
    return delegates


def check_lock_pairing(tree: ast.Module) -> List[Tuple[int, str]]:
    """Run the N02 analysis over a parsed module; returns (line, message)."""
    delegates = releasing_functions(tree)
    violations: List[Tuple[int, str]] = []
    for func in _functions(tree):
        if func.name in IMPLEMENTATION_NAMES:
            continue  # accessor implementations, not protocol users
        if _contains_acquire(func) is None:
            continue
        checker = _FunctionChecker(func, delegates)
        violations.extend(checker.run())
    return sorted(set(violations))
