"""B-link tree substrate: page layout, pointers, algorithms, bulk loading."""

from repro.btree.accessor import NodeAccessor, RootRef
from repro.btree.algorithm import BLinkTree
from repro.btree.bulk import BulkLoadResult, bulk_load
from repro.btree.node import (
    HEADER_BYTES,
    MAX_KEY,
    TOMBSTONE_BIT,
    Node,
    NodeType,
    fanout,
    is_tombstoned,
    strip_tombstone,
)
from repro.btree.pointers import NULL_RAW, RemotePointer, encode_pointer, is_null

__all__ = [
    "NodeAccessor",
    "RootRef",
    "BLinkTree",
    "BulkLoadResult",
    "bulk_load",
    "HEADER_BYTES",
    "MAX_KEY",
    "TOMBSTONE_BIT",
    "Node",
    "NodeType",
    "fanout",
    "is_tombstoned",
    "strip_tombstone",
    "NULL_RAW",
    "RemotePointer",
    "encode_pointer",
    "is_null",
]
