"""Discrete-event simulation kernel (events, processes, resources)."""

from repro.sim.core import Condition, Event, Process, Simulator, Timeout
from repro.sim.resources import BandwidthChannel, Resource, Store

__all__ = [
    "Condition",
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "BandwidthChannel",
    "Resource",
    "Store",
]
