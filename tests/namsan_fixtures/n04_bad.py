"""N04 fixture: ad-hoc exception types outside the taxonomy."""


def fail_generically(reason):
    raise RuntimeError(f"something went wrong: {reason}")


def fail_with_custom_type(code):
    class ProtocolPanic(Exception):
        pass

    raise ProtocolPanic(code)


def exit_from_library_code():
    raise SystemExit(3)


def throttle_with_unregistered_type(tenant):
    class ThrottleStorm(Exception):
        """An admission rejection invented outside repro.errors."""

    raise ThrottleStorm(f"tenant {tenant} over limit")
