"""Benchmark target for the page-size sensitivity extension."""

from repro.experiments import ext_page_size
from repro.workloads import OpType


def test_page_size_sweep(benchmark, run_once, bench_scale):
    results = run_once(ext_page_size.run, scale=bench_scale, num_clients=40)
    ext_page_size.print_figure(results)

    heights = {p: results[("A", p)][1] for p in ext_page_size.PAGE_SIZES}
    benchmark.extra_info["heights"] = heights
    # Bigger pages, higher fanout, shallower tree — strictly.
    assert heights[256] > heights[1024] >= heights[4096]

    # Points: a huge page moves 4 KiB per level and loses to 1 KiB.
    point_1k, _ = results[("A", 1024)]
    point_4k, _ = results[("A", 4096)]
    assert point_1k.throughput > point_4k.throughput
    # Latency per point lookup tracks (transfer x height) costs.
    assert point_1k.latency_mean(OpType.POINT) < point_4k.latency_mean(
        OpType.POINT
    )