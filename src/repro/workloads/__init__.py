"""YCSB-style workload generation, execution, and measurement."""

from repro.workloads.datagen import (
    Dataset,
    generate_dataset,
    skew_fractions,
    skewed_partitioner,
)
from repro.workloads.distributions import (
    KeyChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    make_chooser,
)
from repro.workloads.metrics import OpType, RunResult
from repro.workloads.runner import WorkloadRunner
from repro.workloads.ycsb import (
    WorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_e,
)

__all__ = [
    "Dataset",
    "generate_dataset",
    "skew_fractions",
    "skewed_partitioner",
    "KeyChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "ZipfianChooser",
    "make_chooser",
    "OpType",
    "RunResult",
    "WorkloadRunner",
    "WorkloadSpec",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
    "workload_e",
]
