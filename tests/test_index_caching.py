"""Tests for client-side inner-node caching (Appendix A.4)."""

import pytest

from repro import Cluster, ClusterConfig, FineGrainedIndex, cached_session
from repro.rdma.verbs import Verb


@pytest.fixture
def fg(dataset):
    cluster = Cluster(ClusterConfig(num_memory_servers=4, seed=21))
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    return cluster, dataset, index


def total_reads(cluster):
    return sum(server.stats.ops[Verb.READ] for server in cluster.memory_servers)


def test_cached_lookups_are_correct(fg):
    cluster, dataset, index = fg
    session = cached_session(index, cluster.new_compute_server(), ttl_s=1.0)
    for i in (0, 5, 77, 1999):
        assert cluster.execute(session.lookup(dataset.key_at(i))) == [i]


def test_repeat_lookups_save_reads(fg):
    cluster, dataset, index = fg
    session = cached_session(index, cluster.new_compute_server(), ttl_s=1.0)
    cluster.execute(session.lookup(dataset.key_at(100)))
    warm = total_reads(cluster)
    cluster.execute(session.lookup(dataset.key_at(100)))
    # Only the leaf READ goes to the network; inner levels come from cache.
    assert total_reads(cluster) - warm == 1
    assert session._tree.acc.hits > 0


def test_leaves_never_cached(fg):
    cluster, dataset, index = fg
    session = cached_session(index, cluster.new_compute_server(), ttl_s=1.0)
    writer = index.session(cluster.new_compute_server())
    key = dataset.key_at(42)
    assert cluster.execute(session.lookup(key)) == [42]
    cluster.execute(writer.insert(key, 4242))
    # The cached session sees the new value immediately: leaf reads are
    # always fresh.
    assert sorted(cluster.execute(session.lookup(key))) == [42, 4242]


def test_ttl_expires_entries(fg):
    cluster, dataset, index = fg
    session = cached_session(index, cluster.new_compute_server(), ttl_s=1e-9)
    cluster.execute(session.lookup(dataset.key_at(1)))
    warm = total_reads(cluster)
    cluster.execute(session.lookup(dataset.key_at(1)))
    assert total_reads(cluster) - warm > 1  # cache was cold again
    assert session._tree.acc.hits == 0


def test_writes_invalidate_cached_pages(fg):
    cluster, dataset, index = fg
    session = cached_session(index, cluster.new_compute_server(), ttl_s=10.0)
    accessor = session._tree.acc
    cluster.execute(session.lookup(dataset.key_at(7)))
    assert len(accessor._cache) > 0
    # Insert through the same session: pages it locks get invalidated.
    cluster.execute(session.insert(dataset.key_at(7) + 1, 1))
    assert cluster.execute(session.lookup(dataset.key_at(7) + 1)) == [1]


def test_capacity_bounds_cache(fg):
    cluster, dataset, index = fg
    session = cached_session(
        index, cluster.new_compute_server(), capacity=2, ttl_s=10.0
    )
    for i in range(0, 2000, 97):
        cluster.execute(session.lookup(dataset.key_at(i)))
    assert len(session._tree.acc._cache) <= 2


def test_cached_session_survives_concurrent_splits(fg):
    """Stale cached inner nodes are routed around via move-right."""
    cluster, dataset, index = fg
    reader = cached_session(index, cluster.new_compute_server(), ttl_s=10.0)
    writer = index.session(cluster.new_compute_server())
    # Warm the cache.
    for i in range(0, 2000, 40):
        cluster.execute(reader.lookup(dataset.key_at(i)))
    # Force many splits near one spot.
    for i in range(250):
        cluster.execute(writer.insert(dataset.key_at(1000) + 1 + (i % 7), i))
    # Cached traversals still find both old and new keys.
    assert cluster.execute(reader.lookup(dataset.key_at(1000))) == [1000]
    got = cluster.execute(
        reader.range_scan(dataset.key_at(1000), dataset.key_at(1001))
    )
    assert len(got) == 251
    assert reader._tree.acc.hit_rate > 0


# -- coherent-cache mechanics (docs/caching.md) -----------------------------


class _FakeNode:
    """Just enough of a Node for RemoteCache bookkeeping."""

    def __init__(self, level=2, version=2):
        self.level = level
        self.version = version

    def clone(self):
        return _FakeNode(self.level, self.version)


def test_lru_eviction_order():
    from repro.index.caching import RemoteCache

    cache = RemoteCache(capacity=3, depth=3)
    for ptr in (1, 2, 3):
        cache.store(ptr, _FakeNode(), b"x", epoch=0, now=0.0)
    # Touch 1 so 2 becomes the least recently used entry.
    assert cache.lookup(1, epoch=0, now=0.0) is not None
    cache.store(4, _FakeNode(), b"x", epoch=0, now=0.0)
    assert cache.lookup(2, epoch=0, now=0.0) is None
    assert all(
        cache.lookup(ptr, epoch=0, now=0.0) is not None for ptr in (1, 3, 4)
    )
    assert cache.evictions == 1
    assert len(cache) == 3


def test_capacity_zero_disables_cleanly(fg):
    from repro import CacheConfig, Cluster, ClusterConfig, FineGrainedIndex

    _cluster, dataset, _index = fg
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=4,
            seed=21,
            cache=CacheConfig(depth=2, capacity=0),
        )
    )
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    session = index.session(cluster.new_compute_server())
    for i in (0, 5, 5, 77, 77):
        assert cluster.execute(session.lookup(dataset.key_at(i))) == [i]
    accessor = session._tree.acc
    assert len(accessor.cache) == 0
    assert accessor.hits == 0
    assert accessor.misses > 0


def test_epoch_bump_invalidates_only_the_affected_index(dataset):
    """Splitting index "left" must not cost index "right" a single
    revalidation: structure epochs are per-descriptor, not global."""
    from repro import CacheConfig, Cluster, ClusterConfig, FineGrainedIndex

    cluster = Cluster(
        ClusterConfig(num_memory_servers=4, seed=21, cache=CacheConfig(depth=3))
    )
    left = FineGrainedIndex.build(cluster, "left", dataset.pairs())
    right = FineGrainedIndex.build(cluster, "right", dataset.pairs())
    reader_left = left.session(cluster.new_compute_server())
    reader_right = right.session(cluster.new_compute_server())
    for i in range(0, 2000, 40):  # warm both caches
        cluster.execute(reader_left.lookup(dataset.key_at(i)))
        cluster.execute(reader_right.lookup(dataset.key_at(i)))

    epoch_before = cluster.catalog.structure_epoch("left")
    writer = left.session(cluster.new_compute_server())
    for i in range(250):  # force splits (and separator installs) in "left"
        cluster.execute(writer.insert(dataset.key_at(1000) + 1 + (i % 7), i))
    assert cluster.catalog.structure_epoch("left") > epoch_before
    assert cluster.catalog.structure_epoch("right") == 0

    for i in range(0, 2000, 40):
        cluster.execute(reader_left.lookup(dataset.key_at(i)))
        cluster.execute(reader_right.lookup(dataset.key_at(i)))
    assert reader_left._tree.acc.cache.revalidations > 0
    assert reader_right._tree.acc.cache.revalidations == 0
    assert reader_right._tree.acc.hits > 0


def test_counters_reconcile_with_verb_counts(dataset):
    """Read-only invariant: every cache miss is exactly one remote READ,
    every hit is zero — so the QP verb ledger must equal the miss count.
    The namscope registry must agree with the cache's own counters."""
    from repro import CacheConfig, Cluster, ClusterConfig, FineGrainedIndex
    from repro.obs import ObservabilityConfig

    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=4,
            seed=21,
            cache=CacheConfig(depth=3),
            observability=ObservabilityConfig(enabled=True),
        )
    )
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    session = index.session(cluster.new_compute_server())
    # One warm-up lookup so the root-pointer word is resolved (a READ
    # outside the node-cache path) before the ledger window opens.
    cluster.execute(session.lookup(dataset.key_at(0)))
    accessor = session._tree.acc
    baseline = total_reads(cluster)
    misses_before = accessor.misses
    for i in range(0, 2000, 17):
        cluster.execute(session.lookup(dataset.key_at(i)))
    read_delta = total_reads(cluster) - baseline

    assert accessor.misses > 0 and accessor.hits > 0
    assert accessor.cache.revalidations == 0  # no SMOs ran
    assert read_delta == accessor.misses - misses_before

    registry = cluster.obs.registry
    assert registry.counter("nam_cache_hits_total").value == accessor.hits
    assert registry.counter("nam_cache_misses_total").value == accessor.misses
    assert registry.counter("nam_cache_revalidations_total").value == 0
    assert registry.counter("nam_cache_invalidations_total").value == 0


def test_stale_lock_path_invalidates_and_recovers(fg):
    """Regression (lock-path staleness): a lock attempt carrying a
    version served from a stale cached image must fail, drop the image,
    and let the retry lock successfully on fresh bytes — otherwise every
    retry would re-read the same stale page and re-fail forever."""
    cluster, dataset, index = fg
    compute = cluster.new_compute_server()
    session = cached_session(index, compute, depth=3)
    accessor = session._tree.acc
    root_raw = cluster.execute(session._tree.root.get())

    cluster.execute(accessor.read_node(root_raw))  # miss: fills the cache
    node = cluster.execute(accessor.read_node(root_raw))  # hit: cache-served
    assert accessor.hits == 1
    stale_version = node.version

    # A concurrent writer bumps the page's version without any SMO (so
    # the structure epoch cannot save us — only lock-path validation can).
    other = index.session(cluster.new_compute_server())._tree.acc
    fresh = cluster.execute(other.read_node(root_raw))
    assert cluster.execute(other.try_lock(root_raw, fresh.version))
    cluster.execute(other.unlock_write(root_raw, fresh))

    # The stale-served lock attempt fails and evicts the stale image.
    assert not cluster.execute(accessor.try_lock(root_raw, stale_version))
    assert accessor.cache.revalidation_failures == 1
    assert root_raw not in accessor._cache

    # Retry refetches fresh bytes and the lock now succeeds.
    current = cluster.execute(accessor.read_node(root_raw))
    assert current.version > stale_version
    assert cluster.execute(accessor.try_lock(root_raw, current.version))
    cluster.execute(accessor.unlock_nochange(root_raw))
