"""Coherence proofs for the client-side index cache (docs/caching.md).

Three layers of evidence that the coherent :class:`repro.index.caching.
RemoteCache` never changes what an operation observes:

* a **differential oracle** — scripted op sequences through the cached
  stack (fine-grained and hybrid, every cache depth) must produce
  outcomes byte-identical to the uncached run, with the structural
  verifier clean afterwards;
* **property tests** — randomized (hypothesis) insert/split workloads
  where a cached reader races a writer; every read must match a sorted
  multimap model, i.e. no stale leaf read ever returns a deleted or
  superseded value;
* a **chaos test** — a mixed workload with message faults, a destructive
  server crash and replication failover on top of the cache, verified
  structurally and for replica convergence (also exercised under
  ``--namsan`` in CI).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CacheConfig,
    Cluster,
    ClusterConfig,
    FaultPlan,
    FineGrainedIndex,
    HybridIndex,
    ServerCrash,
    verify_index,
)
from repro.index.caching import CachingRemoteAccessor
from repro.workloads import WorkloadRunner, WorkloadSpec, generate_dataset

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.errors.ConfigurationWarning"
)

DEPTHS = (0, 1, 2, 3)


def _script(seed: int, key_space: int, n_ops: int = 160):
    """A deterministic op script replayed identically for every config."""
    rng = random.Random(seed)
    ops = []
    seq = 10_000
    for _ in range(n_ops):
        kind = rng.choices(
            ["insert", "update", "delete", "lookup", "scan"],
            weights=[30, 10, 10, 35, 15],
        )[0]
        key = rng.randrange(0, key_space)
        ops.append((kind, key, seq))
        seq += 1
    return ops


def _build(design: str, depth: int, dataset, seed: int = 5):
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=2,
            seed=seed,
            cache=CacheConfig(depth=depth),
        )
    )
    if design == "fine-grained":
        index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    else:
        index = HybridIndex.build(
            cluster, "idx", dataset.pairs(), key_space=dataset.key_space
        )
    return cluster, index


def _replay(cluster, session, ops):
    """Apply *ops* serially; the outcome list is the differential signal."""
    outcomes = []
    for kind, key, seq in ops:
        if kind == "insert":
            cluster.execute(session.insert(key, seq))
            outcomes.append(("insert", key, seq))
        elif kind == "update":
            outcomes.append(
                ("update", key, cluster.execute(session.update(key, seq)))
            )
        elif kind == "delete":
            outcomes.append(("delete", key, cluster.execute(session.delete(key))))
        elif kind == "lookup":
            outcomes.append(
                ("lookup", key, sorted(cluster.execute(session.lookup(key))))
            )
        else:
            got = cluster.execute(session.range_scan(key, key + 64))
            outcomes.append(("scan", key, sorted(got)))
    return outcomes


@pytest.mark.parametrize("design", ["fine-grained", "hybrid"])
def test_differential_oracle_across_depths(design):
    """Every cache depth observes exactly what the uncached run observes.

    The insert weight is high enough that the script splits leaves and
    installs separators (bumping the structure epoch), so cached inner
    images really do go stale mid-script and must be revalidated — not
    merely never re-read.
    """
    dataset = generate_dataset(300, gap=4)
    ops = _script(seed=97, key_space=dataset.key_space)
    baseline = None
    for depth in DEPTHS:
        cluster, index = _build(design, depth, dataset)
        session = index.session(cluster.new_compute_server())
        outcomes = _replay(cluster, session, ops)
        if baseline is None:
            baseline = outcomes
        else:
            assert outcomes == baseline, f"{design} depth={depth} diverged"
        report = verify_index(cluster, index)
        assert report.ok, report.violations
        if design == "fine-grained" and depth > 0:
            # The run must actually have exercised the cache.
            accessor = session._tree.acc
            assert isinstance(accessor, CachingRemoteAccessor)
            assert accessor.hits > 0


def test_differential_oracle_two_sessions_fine_grained():
    """A cached reader interleaved with a separate writer session sees
    the same outcomes as an uncached reader under the same interleaving:
    cross-session coherence, not just self-invalidated writes."""
    dataset = generate_dataset(300, gap=4)
    ops = _script(seed=31, key_space=dataset.key_space, n_ops=200)
    baseline = None
    for depth in DEPTHS:
        cluster, index = _build("fine-grained", depth, dataset)
        reader = index.session(cluster.new_compute_server())
        writer = index.session(cluster.new_compute_server())
        outcomes = []
        for kind, key, seq in ops:
            if kind in ("insert", "update", "delete"):
                outcomes.extend(_replay(cluster, writer, [(kind, key, seq)]))
            else:
                outcomes.extend(_replay(cluster, reader, [(kind, key, seq)]))
        if baseline is None:
            baseline = outcomes
        else:
            assert outcomes == baseline, f"two-session depth={depth} diverged"
        report = verify_index(cluster, index)
        assert report.ok, report.violations


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete", "lookup", "scan"]),
            st.integers(min_value=0, max_value=160),
        ),
        max_size=60,
    ),
    depth=st.sampled_from([1, 2, 3]),
)
def test_cached_index_matches_sorted_multimap(ops, depth):
    """Random op sequences through a *cached* reader racing a writer
    behave like a sorted multimap: no read ever returns a deleted or
    superseded value, no matter what the cache holds."""
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=2, seed=1, cache=CacheConfig(depth=depth)
        )
    )
    dataset = generate_dataset(40, gap=4)
    index = FineGrainedIndex.build(cluster, "prop", dataset.pairs())
    reader = index.session(cluster.new_compute_server())
    writer = index.session(cluster.new_compute_server())

    model = {key: [ordinal] for key, ordinal in dataset.pairs()}
    seq = 1000
    for op, key in ops:
        if op == "insert":
            cluster.execute(writer.insert(key, seq))
            model.setdefault(key, []).append(seq)
            seq += 1
        elif op == "update":
            found = cluster.execute(writer.update(key, seq))
            assert found == bool(model.get(key))
            if model.get(key):
                model[key][0] = seq
            seq += 1
        elif op == "delete":
            found = cluster.execute(writer.delete(key))
            assert found == bool(model.get(key))
            if model.get(key):
                model[key].pop(0)
        elif op == "lookup":
            got = sorted(cluster.execute(reader.lookup(key)))
            assert got == sorted(model.get(key, []))
        else:
            low, high = sorted((key, key + 40))
            got = cluster.execute(reader.range_scan(low, high))
            expected = sorted(
                (k, payload)
                for k, payloads in model.items()
                if low <= k < high
                for payload in payloads
            )
            assert sorted(got) == expected
    report = verify_index(cluster, index)
    assert report.ok, report.violations


@settings(max_examples=8, deadline=None)
@given(
    burst_at=st.integers(min_value=0, max_value=6),
    probe=st.integers(min_value=0, max_value=39),
    depth=st.sampled_from([2, 3]),
)
def test_split_bursts_never_serve_stale_reads(burst_at, probe, depth):
    """Insert bursts force leaf and inner splits under a warmed cache;
    a delete observed through the cached session must stay deleted and
    old values must never resurface."""
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=2, seed=3, cache=CacheConfig(depth=depth)
        )
    )
    dataset = generate_dataset(40, gap=4)
    index = FineGrainedIndex.build(cluster, "prop", dataset.pairs())
    session = index.session(cluster.new_compute_server())

    # Warm the cache across the key space.
    for i in range(0, 40, 3):
        cluster.execute(session.lookup(dataset.key_at(i)))

    probe_key = dataset.key_at(probe)
    assert cluster.execute(session.lookup(probe_key)) == [probe]
    assert cluster.execute(session.delete(probe_key))

    # Split storm around one spot: grows the tree, bumps the epoch.
    hot = dataset.key_at(burst_at)
    for i in range(180):
        cluster.execute(session.insert(hot + 1 + (i % 3), 5000 + i))

    # The deleted value must not resurface through any cached image.
    assert cluster.execute(session.lookup(probe_key)) == []
    cluster.execute(session.insert(probe_key, 777))
    assert cluster.execute(session.lookup(probe_key)) == [777]
    report = verify_index(cluster, index)
    assert report.ok, report.violations


def test_cached_chaos_workload_with_replication_failover():
    """The full stack at once: cached sessions (depth 2), message drops /
    delays / duplicates, a destructive server crash and restart at
    replication factor 2. Typed errors only; verifier clean; replicas
    byte-converged. CI also runs this under ``--namsan``."""
    cluster = Cluster(
        ClusterConfig(
            num_memory_servers=3,
            memory_servers_per_machine=1,
            replication_factor=2,
            seed=43,
            cache=CacheConfig(depth=2),
        )
    )
    dataset = generate_dataset(600, gap=4)
    index = FineGrainedIndex.build(cluster, "idx", dataset.pairs())
    injector = cluster.attach_faults(
        FaultPlan(
            seed=13,
            drop_probability=0.02,
            delay_probability=0.05,
            delay_s=30e-6,
            duplicate_probability=0.02,
            server_crashes=(ServerCrash(1, at_s=0.004, down_for_s=0.002),),
        )
    )
    spec = WorkloadSpec(
        name="cache-chaos-mix",
        point_fraction=0.5,
        range_fraction=0.1,
        insert_fraction=0.3,
        delete_fraction=0.1,
        selectivity=0.005,
    )
    runner = WorkloadRunner(cluster, dataset, clients_per_compute_server=8)
    result = runner.run(
        index, spec, num_clients=8, warmup_s=0.001, measure_s=0.009, seed=17
    )
    assert result.total_ops > 0
    assert injector.stats["server_crashes"] == 1
    assert injector.stats["server_restarts"] == 1
    assert all(name == "RetriesExhaustedError" for name in result.errors)

    injector.quiesce()
    session = index.session(cluster.new_compute_server())
    scan = cluster.execute(session.range_scan(0, dataset.key_space * 2))
    keys = [key for key, _value in scan]
    assert keys == sorted(keys)
    report = verify_index(cluster, index)
    assert report.ok, report.violations
    cluster.replication.assert_replicas_converged()
