"""N01 fixture: every classic determinism leak in one file."""

import random
import time
from datetime import datetime
from time import monotonic as mono


def stamp_with_wall_clock():
    return time.time()


def stamp_with_monotonic():
    return mono()


def unseeded_choice(options):
    return random.choice(options)


def timestamped_label():
    return datetime.now().isoformat()
