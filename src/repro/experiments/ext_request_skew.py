"""Extension: request skew (Zipfian access patterns).

The paper's headline skew experiments use *attribute-value* (data) skew;
the original YCSB instead skews the *request* distribution — a few hot
keys receive most of the accesses (Section 6: "the original YCSB only
supports a skewed access pattern of queries by using a Zipfian
distribution"). This extension runs workload A under uniform, Zipfian
(hot keys clustered at the low end of the key space) and scrambled-Zipfian
(hot keys spread) request distributions, and adds the A.4 inner-node
cache, which thrives on request skew: the hot traversal paths pin
themselves into the client cache.

Run with ``python -m repro.experiments.ext_request_skew``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import (
    DESIGNS,
    build_cluster,
    build_index,
    format_rate,
    print_table,
)
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.index.caching import cached_session
from repro.workloads import RunResult, WorkloadRunner, generate_dataset, workload_a

__all__ = ["run", "print_figure", "main", "DISTRIBUTIONS"]

DISTRIBUTIONS = ("uniform", "zipfian", "scrambled_zipfian")

#: (design label, distribution)
Key = Tuple[str, str]


class _CachedProxy:
    """Fine-grained index whose sessions carry the A.4 node cache."""

    def __init__(self, index) -> None:
        self._index = index
        self.design = index.design + "+cache"

    def session(self, compute_server):
        return cached_session(self._index, compute_server, ttl_s=0.01)


def run(
    scale: ExperimentScale = DEFAULT, num_clients: int = 80
) -> Dict[Key, RunResult]:
    """Run this experiment's grid; returns the per-cell results."""
    results: Dict[Key, RunResult] = {}
    rows = list(DESIGNS) + ["fine-grained+cache"]
    for label in rows:
        for distribution in DISTRIBUTIONS:
            dataset = generate_dataset(scale.num_keys, scale.gap)
            cluster = build_cluster(scale)
            if label == "fine-grained+cache":
                target = _CachedProxy(build_index(cluster, "fine-grained", dataset))
            else:
                target = build_index(cluster, label, dataset)
            runner = WorkloadRunner(cluster, dataset)
            results[(label, distribution)] = runner.run(
                target,
                workload_a(distribution=distribution),
                num_clients=num_clients,
                warmup_s=scale.warmup_s,
                measure_s=scale.measure_s,
                seed=scale.seed,
            )
    return results


def print_figure(results: Dict[Key, RunResult]) -> None:
    """Print the paper-shaped series for *results*."""
    labels = sorted({label for label, _ in results})
    rows = {
        label: [
            format_rate(results[(label, distribution)].throughput)
            for distribution in DISTRIBUTIONS
        ]
        for label in labels
    }
    print_table(
        "Extension - point queries under request skew (throughput, ops/s)",
        DISTRIBUTIONS,
        rows,
        col_header="",
    )


def main() -> None:
    """CLI entry point."""
    print_figure(run())


if __name__ == "__main__":
    main()
