"""Distribution-agnostic B-link tree operations.

This module implements the logical index operations of the paper — point
lookup, range scan, insert (with leaf/inner/root splits) and delete (via
tombstone bits) — once, against the :class:`~repro.btree.accessor.NodeAccessor`
interface. Each index design instantiates :class:`BLinkTree` with its own
accessor (local for the coarse-grained design, one-sided-remote for the
fine-grained design, mixed for the hybrid).

Concurrency follows Lehman/Yao B-link trees with the paper's optimistic
lock coupling flavour (Listings 1-4):

* readers never lock; they rely on atomic page reads plus "move right"
  through sibling pointers to survive concurrent splits;
* writers lock exactly one node at a time with a CAS on the version word
  and restart on conflict;
* a split installs the new right sibling *before* unlocking the split node,
  leaving at worst a reachable half-split state, then ascends to install
  the separator (retrying from the root, tolerating concurrent splits and
  root growth).

All public methods are simulation processes (drive them with
``yield from`` inside a process, or ``Simulator.run_until_complete``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.btree.accessor import NodeAccessor, RootRef
from repro.btree.node import (
    MAX_KEY,
    TOMBSTONE_BIT,
    Node,
    NodeType,
    fanout,
    is_tombstoned,
)
from repro.btree.pointers import is_null
from repro.errors import IndexError_

__all__ = ["BLinkTree"]


class BLinkTree:
    """B-link tree operations over an abstract node accessor.

    ``use_head_nodes`` enables the Section 4.3 range-scan optimization:
    when a scanned leaf carries a head-node pointer, the scan reads the
    head and prefetches the next leaves in parallel instead of chasing
    sibling pointers one round trip at a time.
    """

    def __init__(
        self,
        accessor: NodeAccessor,
        root_ref: RootRef,
        use_head_nodes: bool = False,
        prefetch_window: int = 8,
    ) -> None:
        self.acc = accessor
        self.root = root_ref
        self.max_entries = fanout(accessor.page_size)
        self.use_head_nodes = use_head_nodes
        self.prefetch_window = prefetch_window
        #: Optional no-arg callback fired after this tree modifies an
        #: *inner* node (separator install, inner split, root growth).
        #: The index designs wire it to the catalog's per-index structure
        #: epoch so client-side caches know their images may be stale
        #: (docs/caching.md). Pure bookkeeping: never schedules events.
        self.on_structure_change = None

    def _structure_changed(self) -> None:
        callback = self.on_structure_change
        if callback is not None:
            callback()

    # ------------------------------------------------------------------ #
    # navigation helpers                                                  #
    # ------------------------------------------------------------------ #

    def _read_unlocked(
        self, raw_ptr: int, shared: bool = False
    ) -> Generator[Any, Any, Node]:
        """Fetch the page at *raw_ptr*, spinning while its lock bit is set
        (the paper's ``readLockOrRestart`` / ``remote_awaitNodeUnlocked``).

        If the accessor grants a lock lease, a locked word that stays
        *unchanged* for the whole lease is presumed abandoned (its holder
        crashed between lock and unlock) and is CAS-stolen, so one dead
        client cannot wedge the subtree. Any change to the word — a page
        write inside the critical section, an unlock, someone else's
        steal — re-arms the timer.
        """
        node = yield from self.acc.read_node(raw_ptr, shared)
        if not node.is_locked:
            return node
        observed_word = node.version
        observed_since = self.acc.now()
        while True:
            yield from self.acc.spin_pause()
            node = yield from self.acc.read_node(raw_ptr, shared)
            if not node.is_locked:
                return node
            if node.version != observed_word:
                observed_word = node.version
                observed_since = self.acc.now()
                continue
            lease = self.acc.lock_lease_s()
            if lease is not None and self.acc.now() - observed_since >= lease:
                yield from self.acc.try_steal_lock(raw_ptr, observed_word)
                # Whether we won the steal or raced another client, start
                # observing afresh.
                observed_since = self.acc.now()

    def _descend_from(
        self, raw_ptr: int, node: Node, key: int, level: int,
        shared: bool = False,
    ) -> Generator[Any, Any, Tuple[int, Node]]:
        """Walk down from *node* to the node at *level* covering *key*,
        moving right through siblings whenever the key escapes a node's
        range (concurrent splits).

        Each page fetch of the walk becomes a child span of the active
        operation (kind ``descend``/``move_right``, named for the level the
        step *starts* from) so sampled traces show where traversal round
        trips went. With observability off, ``obs`` is None and every
        guard collapses to one attribute test."""
        obs = self.acc.obs
        while node.level > level:
            if not node.covers(key) and not is_null(node.right):
                raw_ptr = node.right
                step_kind = "move_right"
            else:
                raw_ptr = node.find_child(key)
                step_kind = "descend"
            if obs is not None:
                obs.enter_step(step_kind, f"level_{node.level}")
            node = yield from self._read_unlocked(raw_ptr, shared)
            if obs is not None:
                obs.exit_step()
        while not node.covers(key) and not is_null(node.right):
            raw_ptr = node.right
            if obs is not None:
                obs.enter_step("move_right", f"level_{node.level}")
            node = yield from self._read_unlocked(raw_ptr, shared)
            if obs is not None:
                obs.exit_step()
        return raw_ptr, node

    def _descend_to_level(
        self, key: int, level: int, shared: bool = False
    ) -> Generator[Any, Any, Tuple[int, Node]]:
        obs = self.acc.obs
        raw_ptr = yield from self.root.get()
        if obs is not None:
            obs.enter_step("descend", "root")
        node = yield from self._read_unlocked(raw_ptr, shared)
        if obs is not None:
            obs.exit_step()
        return (
            yield from self._descend_from(raw_ptr, node, key, level, shared)
        )

    # ------------------------------------------------------------------ #
    # reads                                                               #
    # ------------------------------------------------------------------ #

    def _locate_from(
        self, raw_ptr: int, key: int, shared: bool = False
    ) -> Generator[Any, Any, Tuple[int, Node]]:
        """Read the node at *raw_ptr* and move right until it covers *key*.

        The hybrid design starts leaf operations from a pointer returned by
        a traversal RPC; the leaf may have split since, so the move-right
        step is mandatory (Section 5.2)."""
        obs = self.acc.obs
        node = yield from self._read_unlocked(raw_ptr, shared)
        while not node.covers(key) and not is_null(node.right):
            raw_ptr = node.right
            if obs is not None:
                obs.enter_step("move_right", f"level_{node.level}")
            node = yield from self._read_unlocked(raw_ptr, shared)
            if obs is not None:
                obs.exit_step()
        return raw_ptr, node

    def lookup(self, key: int) -> Generator[Any, Any, List[int]]:
        """Point query: all live payloads stored under *key*.

        Non-unique keys are supported; an empty list means "not found".
        """
        _ptr, leaf = yield from self._descend_to_level(key, 0, shared=True)
        return leaf.leaf_matches(key)

    def lookup_at(self, leaf_ptr: int, key: int) -> Generator[Any, Any, List[int]]:
        """Point query starting from a known leaf pointer (hybrid design)."""
        _ptr, leaf = yield from self._locate_from(leaf_ptr, key, shared=True)
        return leaf.leaf_matches(key)

    def range_scan(
        self, low: int, high: int
    ) -> Generator[Any, Any, List[Tuple[int, int]]]:
        """Range query: live ``(key, payload)`` pairs with ``low <= key < high``.

        Walks the leaf chain left to right; with head nodes enabled the walk
        prefetches upcoming leaves in parallel (Section 4.3), falling back
        to serial sibling reads for any leaf a stale head misses.
        """
        if high <= low:
            return []
        raw_ptr, node = yield from self._descend_to_level(low, 0, shared=True)
        return (yield from self._scan_chain(raw_ptr, node, low, high))

    def scan_at(
        self, leaf_ptr: int, low: int, high: int
    ) -> Generator[Any, Any, List[Tuple[int, int]]]:
        """Range query starting from a known leaf pointer (hybrid design)."""
        if high <= low:
            return []
        raw_ptr, node = yield from self._locate_from(leaf_ptr, low, shared=True)
        return (yield from self._scan_chain(raw_ptr, node, low, high))

    def _scan_chain(
        self, raw_ptr: int, node: Node, low: int, high: int
    ) -> Generator[Any, Any, List[Tuple[int, int]]]:
        results: List[Tuple[int, int]] = []
        prefetched: Dict[int, Node] = {}
        seen_heads = set()
        while True:
            # Keys are sorted: bisect to the in-range span [start, end)
            # instead of testing every key against both bounds. An entry at
            # or past *high* inside the node means the scan is complete.
            keys = node.keys
            values = node.values
            start = bisect_left(keys, low)
            end = bisect_left(keys, high, start)
            if end > start:
                results += [
                    pair
                    for pair in zip(keys[start:end], values[start:end])
                    if not pair[1] & TOMBSTONE_BIT
                ]
            if end < len(keys) or node.high_key >= high or is_null(node.right):
                return results
            if (
                self.use_head_nodes
                and not is_null(node.head)
                and node.head not in seen_heads
            ):
                seen_heads.add(node.head)
                yield from self._prefetch_group(node, high, prefetched)
            raw_ptr = node.right
            cached = prefetched.pop(raw_ptr, None)
            if cached is not None and not cached.is_locked:
                node = cached
            else:
                node = yield from self._read_unlocked(raw_ptr)

    def _prefetch_group(
        self, node: Node, high: int, prefetched: Dict[int, Node]
    ) -> Generator[Any, Any, None]:
        """Read *node*'s head node and fetch the upcoming leaves in parallel."""
        head = yield from self.acc.read_node(node.head)
        if not head.is_head:
            return  # the page was recycled; ignore the stale pointer
        wanted = []
        for first_key, leaf_ptr in zip(head.keys, head.values):
            if first_key < node.high_key or first_key >= high:
                continue  # behind the scan position, or beyond the range
            if leaf_ptr in prefetched or is_null(leaf_ptr):
                continue
            wanted.append(leaf_ptr)
            if len(wanted) >= self.prefetch_window:
                break
        if not wanted:
            return
        nodes = yield from self.acc.read_nodes(wanted)
        for leaf_ptr, leaf in zip(wanted, nodes):
            if leaf.is_leaf:
                prefetched[leaf_ptr] = leaf

    # ------------------------------------------------------------------ #
    # writes                                                              #
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: int) -> Generator[Any, Any, None]:
        """Insert ``(key, value)``; duplicates are allowed (secondary index)."""
        if key >= MAX_KEY:
            raise IndexError_(f"key {key} is reserved (MAX_KEY sentinel)")
        if is_tombstoned(value):
            raise IndexError_("payloads must leave bit 63 clear (tombstone bit)")
        while True:
            done = yield from self._insert_once(key, value)
            if done:
                return

    def _insert_once(self, key: int, value: int) -> Generator[Any, Any, bool]:
        raw_ptr, node = yield from self._descend_to_level(key, 0)
        return (yield from self._insert_at_node(raw_ptr, node, key, value))

    def insert_at(self, leaf_ptr: int, key: int, value: int) -> Generator[Any, Any, bool]:
        """One insertion attempt starting from a known leaf pointer.

        Returns True when the insert completed; False means a lock conflict
        and the caller should retry (typically re-traversing first)."""
        raw_ptr, node = yield from self._locate_from(leaf_ptr, key)
        return (yield from self._insert_at_node(raw_ptr, node, key, value))

    def _insert_at_node(
        self, raw_ptr: int, node: Node, key: int, value: int
    ) -> Generator[Any, Any, bool]:
        locked = yield from self.acc.try_lock(raw_ptr, node.version)
        if not locked:
            yield from self.acc.spin_pause()
            return False
        # The CAS succeeded on the version we read, so our copy is the
        # current page content and its range information is trustworthy.
        if not node.covers(key) and not is_null(node.right):
            yield from self.acc.unlock_nochange(raw_ptr)
            return False
        if node.count < self.max_entries:
            node.insert_entry(key, value)
            yield from self.acc.unlock_write(raw_ptr, node)
            return True
        yield from self._split_and_insert(raw_ptr, node, key, value)
        return True

    @staticmethod
    def _split_for_insert(node: Node, key: int) -> Tuple[Node, int]:
        """Split *node* so that *key* has somewhere to go.

        Normally delegates to :meth:`Node.split`. A full node whose keys are
        all equal cannot be split in the middle (the fence would strand the
        left half's duplicates), so it is split at the run boundary instead:
        the new sibling starts empty on whichever side *key* belongs to.
        Inserting yet another duplicate of that same key raises — a single
        key's duplicate run is limited to one page.
        """
        if node.keys[0] != node.keys[-1]:
            return node.split()
        run_key = node.keys[0]
        if key == run_key:
            raise IndexError_(
                f"duplicate run for key {run_key} exceeds one page "
                f"({node.count} entries); use a larger page size"
            )
        if key > run_key:
            # Empty sibling on the right takes over [run_key+1, old high).
            split_key = run_key + 1
            sibling = Node(
                node.node_type,
                node.level,
                right=node.right,
                head=node.head,
                high_key=node.high_key,
            )
        else:
            # The whole run moves right; this node empties out for [low, run_key).
            split_key = run_key
            sibling = Node(
                node.node_type,
                node.level,
                right=node.right,
                head=node.head,
                high_key=node.high_key,
                keys=node.keys[:],
                values=node.values[:],
            )
            node.keys = []
            node.values = []
        node.high_key = split_key
        return sibling, split_key

    def _split_and_insert(
        self, raw_ptr: int, node: Node, key: int, value: int
    ) -> Generator[Any, Any, None]:
        """Split the locked *node*, placing ``(key, value)`` in the proper
        half, then ascend to install the separator."""
        sibling, split_key = self._split_for_insert(node, key)
        new_ptr = yield from self.acc.alloc(node.level)
        node.right = new_ptr
        if key < split_key:
            node.insert_entry(key, value)
        else:
            sibling.insert_entry(key, value)
        # Install the right half before unlocking the left: readers that
        # race with us find the new node via the sibling pointer.
        yield from self.acc.write_node(new_ptr, sibling)
        yield from self.acc.unlock_write(raw_ptr, node)
        yield from self._install_separator(
            node.level + 1, split_key, new_ptr, raw_ptr
        )

    def _install_separator(
        self, level: int, sep_key: int, new_child: int, split_child: int
    ) -> Generator[Any, Any, None]:
        """Insert ``(sep_key, new_child)`` into the node at *level* covering
        the separator, growing the tree with a new root if necessary.

        Retries from the root on any conflict; on an inner split the
        installation continues one level further up.
        """
        while True:
            root_ptr = yield from self.root.get()
            root_node = yield from self._read_unlocked(root_ptr)
            if root_node.level < level:
                root_ptr = yield from self.root.refresh()
                root_node = yield from self._read_unlocked(root_ptr)
            if root_node.level < level:
                grew = yield from self._grow_root(
                    root_ptr, level, sep_key, new_child, split_child
                )
                if grew:
                    return
                continue
            raw_ptr, node = yield from self._descend_from(
                root_ptr, root_node, sep_key, level
            )
            locked = yield from self.acc.try_lock(raw_ptr, node.version)
            if not locked:
                yield from self.acc.spin_pause()
                continue
            if not node.covers(sep_key) and not is_null(node.right):
                yield from self.acc.unlock_nochange(raw_ptr)
                continue
            if node.count < self.max_entries:
                node.insert_entry(sep_key, new_child)
                yield from self.acc.unlock_write(raw_ptr, node)
                self._structure_changed()
                return
            sibling, up_key = self._split_for_insert(node, sep_key)
            new_ptr = yield from self.acc.alloc(node.level)
            node.right = new_ptr
            if sep_key < up_key:
                node.insert_entry(sep_key, new_child)
            else:
                sibling.insert_entry(sep_key, new_child)
            yield from self.acc.write_node(new_ptr, sibling)
            yield from self.acc.unlock_write(raw_ptr, node)
            self._structure_changed()
            level, sep_key = level + 1, up_key
            new_child, split_child = new_ptr, raw_ptr

    def _grow_root(
        self, old_root: int, level: int, sep_key: int, new_child: int, split_child: int
    ) -> Generator[Any, Any, bool]:
        """Install a new root above a split old root (Section 2's 'one
        additional RDMA WRITE for installing a new root node')."""
        new_root = Node(
            NodeType.INNER,
            level,
            keys=[0, sep_key],
            values=[split_child, new_child],
            high_key=MAX_KEY,
        )
        new_root_ptr = yield from self.acc.alloc(level)
        yield from self.acc.write_node(new_root_ptr, new_root)
        swapped = yield from self.root.compare_and_swap(old_root, new_root_ptr)
        # On a lost race the freshly written page is simply abandoned; the
        # epoch garbage collector reclaims unreferenced pages eventually.
        if swapped:
            self._structure_changed()
        return swapped

    def update(self, key: int, value: int) -> Generator[Any, Any, bool]:
        """Replace the first live payload under *key* with *value*.

        In-place page write under the node lock — no structural change can
        result, so no split/ascend handling is needed. Returns True if an
        entry existed.
        """
        if is_tombstoned(value):
            raise IndexError_("payloads must leave bit 63 clear (tombstone bit)")
        while True:
            raw_ptr, node = yield from self._descend_to_level(key, 0)
            done, found = yield from self._update_at_node(raw_ptr, node, key, value)
            if done:
                return found

    def update_at(
        self, leaf_ptr: int, key: int, value: int
    ) -> Generator[Any, Any, Tuple[bool, bool]]:
        """One update attempt from a known leaf pointer; ``(done, found)``."""
        raw_ptr, node = yield from self._locate_from(leaf_ptr, key)
        return (yield from self._update_at_node(raw_ptr, node, key, value))

    def _update_at_node(
        self, raw_ptr: int, node: Node, key: int, value: int
    ) -> Generator[Any, Any, Tuple[bool, bool]]:
        if self._first_live_index(node, key) is None:
            return True, False
        locked = yield from self.acc.try_lock(raw_ptr, node.version)
        if not locked:
            yield from self.acc.spin_pause()
            return False, False
        target = self._first_live_index(node, key)
        if target is None:
            yield from self.acc.unlock_nochange(raw_ptr)
            return True, False
        node.values[target] = value
        yield from self.acc.unlock_write(raw_ptr, node)
        return True, True

    def delete(self, key: int) -> Generator[Any, Any, bool]:
        """Mark the first live entry for *key* deleted (Sections 3.2/4.2).

        Returns True if an entry was tombstoned. Physical removal is the
        epoch garbage collector's job (:mod:`repro.index.gc`).
        """
        while True:
            raw_ptr, node = yield from self._descend_to_level(key, 0)
            done, found = yield from self._delete_at_node(raw_ptr, node, key)
            if done:
                return found

    def delete_at(self, leaf_ptr: int, key: int) -> Generator[Any, Any, Tuple[bool, bool]]:
        """One delete attempt from a known leaf pointer; ``(done, found)``."""
        raw_ptr, node = yield from self._locate_from(leaf_ptr, key)
        return (yield from self._delete_at_node(raw_ptr, node, key))

    def _delete_at_node(
        self, raw_ptr: int, node: Node, key: int
    ) -> Generator[Any, Any, Tuple[bool, bool]]:
        if self._first_live_index(node, key) is None:
            return True, False
        locked = yield from self.acc.try_lock(raw_ptr, node.version)
        if not locked:
            yield from self.acc.spin_pause()
            return False, False
        target = self._first_live_index(node, key)
        if target is None:
            yield from self.acc.unlock_nochange(raw_ptr)
            return True, False
        node.values[target] |= 1 << 63
        yield from self.acc.unlock_write(raw_ptr, node)
        return True, True

    @staticmethod
    def _first_live_index(node: Node, key: int) -> Optional[int]:
        index = bisect_left(node.keys, key)
        while index < len(node.keys) and node.keys[index] == key:
            if not is_tombstoned(node.values[index]):
                return index
            index += 1
        return None

    # ------------------------------------------------------------------ #
    # introspection (testing / validation)                                #
    # ------------------------------------------------------------------ #

    def height(self) -> Generator[Any, Any, int]:
        """Levels from root to leaves inclusive (a lone leaf has height 1)."""
        raw_ptr = yield from self.root.refresh()
        node = yield from self._read_unlocked(raw_ptr)
        return node.level + 1

    def validate(self, min_level: int = 0) -> Generator[Any, Any, Dict[str, int]]:
        """Check structural invariants on a quiescent tree.

        Verifies, level by level: sorted keys, keys within fences, sibling
        chains ordered with the rightmost high key at MAX_KEY, and parent
        separators matching child fences. Raises :class:`IndexError_` on
        violation; returns summary statistics otherwise.

        ``min_level`` stops the walk early — the hybrid design's inner
        trees validate with ``min_level=1`` because their level-0 children
        live on other servers.
        """
        root_ptr = yield from self.root.refresh()
        root = yield from self._read_unlocked(root_ptr)
        stats = {"height": root.level + 1, "nodes": 0, "leaves": 0, "entries": 0,
                 "tombstones": 0}
        leftmost = root_ptr
        for level in range(root.level, min_level - 1, -1):
            node = yield from self._read_unlocked(leftmost)
            if node.level != level:
                raise IndexError_(
                    f"expected level {level} at {leftmost:#x}, found {node.level}"
                )
            next_leftmost = node.values[0] if node.is_inner and node.count else None
            previous_high = 0
            while True:
                stats["nodes"] += 1
                if node.keys != sorted(node.keys):
                    raise IndexError_(f"unsorted keys in node at level {level}")
                if node.keys and node.keys[0] < previous_high:
                    raise IndexError_(
                        f"key below low fence at level {level}: "
                        f"{node.keys[0]} < {previous_high}"
                    )
                if any(k >= node.high_key for k in node.keys):
                    raise IndexError_(f"key >= high fence at level {level}")
                if node.is_leaf:
                    stats["leaves"] += 1
                    stats["entries"] += sum(
                        0 if is_tombstoned(v) else 1 for v in node.values
                    )
                    stats["tombstones"] += sum(
                        1 if is_tombstoned(v) else 0 for v in node.values
                    )
                previous_high = node.high_key
                if is_null(node.right):
                    break
                node = yield from self._read_unlocked(node.right)
            if previous_high != MAX_KEY:
                raise IndexError_(
                    f"rightmost node at level {level} has high key "
                    f"{previous_high}, expected MAX_KEY"
                )
            if level > 0:
                if next_leftmost is None:
                    raise IndexError_(f"inner node at level {level} has no children")
                leftmost = next_leftmost
        return stats
