"""TSan-style race detection over remote-memory access traces.

:class:`RaceDetector` replays :class:`~repro.analysis.namsan.events.AccessEvent`
streams through the happens-before model of :mod:`repro.analysis.namsan.hb`
and reports every pair of overlapping accesses by different actors where at
least one side is a plain WRITE and neither happens-before the other.

What is — deliberately — *not* a race:

* **atomics** (CAS / FETCH_AND_ADD): they are the synchronization
  vocabulary of the protocols (lock words, allocation words, root
  swings) and are modeled as fences, not data accesses;
* **optimistic page reads**: the B-link protocol's readers never lock —
  they validate version words and restart — so read/write pairs are
  only reported when ``report_read_races=True`` (off by default);
* **same-actor pairs**: program order already orders them.

A detected race therefore means a *write* protocol violation: somebody
mutated remote bytes without holding the synchronization the rest of the
system agreed on — precisely the class of bug one-sided RDMA protocols
make easy to write and hard to see (Brock et al.).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.namsan.events import (
    KIND_ATOMIC,
    KIND_READ,
    KIND_WRITE,
    AccessEvent,
)
from repro.analysis.namsan.hb import SyncState, VectorClock

__all__ = ["RaceReport", "RaceDetector", "detect_races"]

#: Stop appending reports after this many races; a broken accessor would
#: otherwise conflict with every later writer and flood the output.
MAX_REPORTS = 64


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, unordered accesses to overlapping remote bytes."""

    first: AccessEvent
    second: AccessEvent

    @property
    def server(self) -> int:
        return self.second.server

    def describe(self) -> str:
        lo = max(self.first.offset, self.second.offset)
        hi = min(self.first.end, self.second.end)
        return (
            f"data race on server {self.server} bytes [{lo:#x}, {hi:#x}): "
            f"{self.first.describe()} is unordered with {self.second.describe()}"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass
class _Cell:
    """Access history of one distinct (offset, length) byte range."""

    offset: int
    length: int
    #: Last plain write per actor: actor -> (own-clock stamp, event).
    writes: Dict[str, Tuple[int, AccessEvent]] = field(default_factory=dict)
    #: Last plain read per actor (kept only when read races are on).
    reads: Dict[str, Tuple[int, AccessEvent]] = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.offset + self.length


class RaceDetector:
    """Online happens-before race detector (feed events in trace order)."""

    def __init__(self, report_read_races: bool = False) -> None:
        self.report_read_races = report_read_races
        self.races: List[RaceReport] = []
        self.events_seen = 0
        self._clocks: Dict[str, VectorClock] = {}
        self._sync = SyncState()
        # Per server: cells grouped by start offset (several lengths may
        # share one start), plus a sorted list of starts and the widest
        # length seen, for overlap range queries.
        self._cells: Dict[int, Dict[int, Dict[int, _Cell]]] = {}
        self._starts: Dict[int, List[int]] = {}
        self._max_length: Dict[int, int] = {}

    # -- driving -------------------------------------------------------------

    def feed(self, event: AccessEvent) -> None:
        """Process one event (events must arrive in ``seq`` order)."""
        self.events_seen += 1
        actor_clock = self._clocks.get(event.actor)
        if actor_clock is None:
            actor_clock = self._clocks[event.actor] = VectorClock()
        # Stamp the event first so a release in the same step covers it.
        stamp = actor_clock.tick(event.actor)
        if event.kind == KIND_ATOMIC:
            # Full fence on the word: acquire, then release.
            word = self._sync.word(event.server, event.offset)
            actor_clock.join(word)
            word.join(actor_clock)
        elif event.kind == KIND_WRITE:
            # Release store into any sync word the range covers (a locked
            # page write-back rewrites its own version word). The *leading*
            # word is presumed a version word even before any atomic has
            # touched it — pages carry their version word at offset 0, and
            # this is the publication edge for freshly allocated siblings:
            # init-write, install separator, first locker CASes on the
            # version the init wrote. Writes never *acquire*, so two
            # unsynchronized writers still race.
            self._sync.word(event.server, event.offset).join(actor_clock)
            for word in self._sync.words_in_range(
                event.server, event.offset, event.length
            ):
                word.join(actor_clock)
            self._check_and_record(event, actor_clock, stamp, is_write=True)
        elif event.kind == KIND_READ:
            if self.report_read_races:
                self._check_and_record(event, actor_clock, stamp, is_write=False)

    def feed_all(self, events: Iterable[AccessEvent]) -> "RaceDetector":
        for event in events:
            self.feed(event)
        return self

    @property
    def ok(self) -> bool:
        return not self.races

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.races)} RACES"
        return (
            f"[namsan sanitize] {status}: {self.events_seen} events, "
            f"{sum(len(group) for by_start in self._cells.values() for group in by_start.values())} ranges, "
            f"{len(self._clocks)} actors"
        )

    # -- internals -----------------------------------------------------------

    def _check_and_record(
        self,
        event: AccessEvent,
        actor_clock: VectorClock,
        stamp: int,
        is_write: bool,
    ) -> None:
        for cell in self._overlapping(event):
            self._check_cell(event, actor_clock, cell, is_write)
        cell = self._cell_for(event)
        if is_write:
            cell.writes[event.actor] = (stamp, event)
        else:
            cell.reads[event.actor] = (stamp, event)

    def _check_cell(
        self,
        event: AccessEvent,
        actor_clock: VectorClock,
        cell: _Cell,
        is_write: bool,
    ) -> None:
        for actor, (stamp, prior) in cell.writes.items():
            if actor == event.actor:
                continue
            if not actor_clock.dominates(actor, stamp):
                self._report(prior, event)
        if is_write and self.report_read_races:
            for actor, (stamp, prior) in cell.reads.items():
                if actor == event.actor:
                    continue
                if not actor_clock.dominates(actor, stamp):
                    self._report(prior, event)

    def _report(self, first: AccessEvent, second: AccessEvent) -> None:
        if len(self.races) < MAX_REPORTS:
            self.races.append(RaceReport(first=first, second=second))

    def _cell_for(self, event: AccessEvent) -> _Cell:
        by_start = self._cells.setdefault(event.server, {})
        group = by_start.get(event.offset)
        if group is None:
            group = by_start[event.offset] = {}
            insort(self._starts.setdefault(event.server, []), event.offset)
        cell = group.get(event.length)
        if cell is None:
            cell = group[event.length] = _Cell(event.offset, event.length)
            if event.length > self._max_length.get(event.server, 0):
                self._max_length[event.server] = event.length
        return cell

    def _overlapping(self, event: AccessEvent) -> List[_Cell]:
        """Every known cell whose byte range intersects *event*'s."""
        starts = self._starts.get(event.server)
        if not starts:
            return []
        by_start = self._cells[event.server]
        reach = self._max_length.get(event.server, 0)
        # A cell starting before (event.offset - widest length) cannot
        # reach into the event's range; one starting at/after event.end
        # cannot either.
        index = bisect_left(starts, event.offset - reach)
        found: List[_Cell] = []
        end = event.end
        while index < len(starts) and starts[index] < end:
            for cell in by_start[starts[index]].values():
                if event.offset < cell.end:
                    found.append(cell)
            index += 1
        return found


def detect_races(
    events: Iterable[AccessEvent],
    report_read_races: bool = False,
    detector: Optional[RaceDetector] = None,
) -> List[RaceReport]:
    """Run the detector over *events* and return the race reports."""
    detector = detector or RaceDetector(report_read_races=report_read_races)
    detector.feed_all(events)
    return detector.races
