"""Closed-loop workload execution (Section 6.1's measurement setup).

Clients mirror the paper's: each client thread runs a closed loop (it
waits for one operation to finish before issuing the next) drawing
operations from a :class:`~repro.workloads.ycsb.WorkloadSpec`. Clients are
grouped onto compute servers (40 per server by default, like the paper's
testbed); each client owns one index session.

A run has a warm-up phase and a measurement window. Throughput counts
operations *completing* inside the window; network/CPU counters are
snapshotted at the window edges.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AdmissionRejectedError, ConfigurationError, TimeoutError_
from repro.index.base import DistributedIndex
from repro.nam.cluster import Cluster
from repro.workloads.datagen import Dataset
from repro.workloads.distributions import make_chooser
from repro.workloads.metrics import OpType, RunResult
from repro.workloads.ycsb import WorkloadSpec

__all__ = ["WorkloadRunner", "OpDrawer"]


class _ClientState:
    """Shared flags and per-op records of one run."""

    def __init__(self) -> None:
        self.stop = False
        self.measure_from: Optional[float] = None
        # (op_type, start, end) triples, appended by clients.
        self.records: List[Tuple[str, float, float]] = []
        # Shared sequence for "append" inserts (YCSB-style key counter).
        self.append_seq = 0


class OpDrawer:
    """Draws one client's operation stream from a :class:`WorkloadSpec`.

    All randomness (the op-mix draw, key choices, uniform insert keys) is
    consumed at :meth:`next_op` time, in a fixed order, so the closed-loop
    and open-loop runners produce identical per-client draw sequences for
    identical seeds. ``next_op`` returns ``(op_type, op)`` where *op* is a
    ``session -> generator`` thunk; executing it later (even concurrently
    with other in-flight ops) touches no more RNG state.

    *append_state* is any object with an ``append_seq`` attribute shared
    by every client of the run — the YCSB-style monotone key counter for
    ``insert_pattern="append"`` workloads.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        dataset: Dataset,
        rng: np.random.Generator,
        append_state: Any,
        client_id: int,
    ) -> None:
        self.spec = spec
        self.dataset = dataset
        self.rng = rng
        self.append_state = append_state
        self.client_id = client_id
        self.chooser = make_chooser(
            spec.distribution, dataset.num_keys, rng, spec.zipf_theta
        )
        self.range_span = max(1, int(spec.selectivity * dataset.key_space))
        self.insert_seq = 0

    def next_op(self) -> Tuple[str, Any]:
        spec = self.spec
        dataset = self.dataset
        rng = self.rng
        draw = rng.random()
        if draw < spec.point_fraction:
            key = dataset.key_at(self.chooser.next_index())
            return OpType.POINT, lambda session: session.lookup(key)
        if draw < spec.point_fraction + spec.range_fraction:
            low = dataset.key_at(self.chooser.next_index())
            high = low + self.range_span
            return OpType.RANGE, lambda session: session.range_scan(low, high)
        if draw < (spec.point_fraction + spec.range_fraction
                   + spec.delete_fraction):
            key = dataset.key_at(self.chooser.next_index())
            return OpType.DELETE, lambda session: session.delete(key)
        if spec.insert_pattern == "append":
            key = dataset.key_space + self.append_state.append_seq
            self.append_state.append_seq += 1
        else:
            key = int(rng.integers(0, dataset.key_space))
        value = self.client_id * 1_000_000 + self.insert_seq
        self.insert_seq += 1
        return OpType.INSERT, lambda session: session.insert(key, value)


class WorkloadRunner:
    """Drives one workload against one index on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        dataset: Dataset,
        clients_per_compute_server: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.dataset = dataset
        self.clients_per_cs = (
            clients_per_compute_server
            if clients_per_compute_server is not None
            else cluster.config.clients_per_compute_server
        )
        if self.clients_per_cs < 1:
            raise ConfigurationError("clients_per_compute_server must be >= 1")

    # ------------------------------------------------------------------ #

    def run(
        self,
        index: DistributedIndex,
        spec: Optional[WorkloadSpec] = None,
        num_clients: Optional[int] = None,
        warmup_s: float = 0.002,
        measure_s: float = 0.02,
        seed: int = 1,
        populations: Optional[Sequence[Tuple[WorkloadSpec, int]]] = None,
        keep_records: bool = False,
        ops_per_client: Optional[int] = None,
    ) -> RunResult:
        """Execute a workload with closed-loop clients.

        Either pass one *spec* with *num_clients*, or *populations* — a
        list of ``(spec, count)`` pairs for heterogeneous client mixes
        (e.g. dedicated reader and writer populations).

        Returns a :class:`RunResult` for the measurement window. The same
        cluster can be reused across runs (counters are windowed), but each
        run adds the compute servers it needs.

        With ``keep_records=True`` the result also carries the raw
        ``(op_type, start, end)`` triples of *every* operation (including
        warm-up and drain) in :attr:`RunResult.raw_records` — availability
        experiments slice them into time buckets around a crash.

        ``ops_per_client`` switches from the timed window to a *fixed
        work* run: every client executes exactly that many operations and
        the measurement window spans the whole run (``warmup_s`` /
        ``measure_s`` are ignored). Deterministic total work makes runs
        comparable by wall clock — the engine benchmark's mode.
        """
        if populations is None:
            if spec is None or num_clients is None:
                raise ConfigurationError(
                    "pass either (spec, num_clients) or populations"
                )
            populations = [(spec, num_clients)]
        total_clients = sum(count for _spec, count in populations)
        if total_clients < 1:
            raise ConfigurationError("need at least one client")
        state = _ClientState()
        client_procs = []
        compute_server = None
        client_id = 0
        for client_spec, count in populations:
            for _ in range(count):
                if client_id % self.clients_per_cs == 0:
                    compute_server = self.cluster.new_compute_server()
                session = index.session(compute_server)
                rng = np.random.default_rng((seed, client_id))
                proc = self.cluster.spawn(
                    self._client_loop(
                        client_id, session, client_spec, rng, state,
                        max_ops=ops_per_client,
                    )
                )
                client_procs.append(proc)
                if self.cluster.fault_injector is not None:
                    self.cluster.fault_injector.register_client(
                        compute_server.server_id, proc
                    )
                client_id += 1
        workload_name = "+".join(
            spec_.name for spec_, _count in populations
        )
        num_clients = total_clients

        if ops_per_client is not None:
            # Fixed-work mode: the window is the whole run, edge to edge.
            baseline = self.cluster.reset_measurement()
            state.measure_from = self.cluster.now
            self.cluster.sim.run_until_complete(
                self.cluster.sim.all_of(client_procs)
            )
            counters = self.cluster.measurement_delta(baseline)
            window_s = self.cluster.now - state.measure_from
            window_end = self.cluster.now
        else:
            controller = self.cluster.spawn(
                self._controller(state, warmup_s, measure_s)
            )
            counters = self.cluster.sim.run_until_complete(controller)
            self.cluster.sim.run_until_complete(
                self.cluster.sim.all_of(client_procs)
            )
            window_s = measure_s
            window_end = state.measure_from + measure_s
        result = RunResult(
            design=index.design,
            workload=workload_name,
            num_clients=num_clients,
            window_s=window_s,
            network=counters["network"],
            cpu_utilization=counters["cpu"],
        )
        for op_type, start, end in state.records:
            if state.measure_from <= end <= window_end:
                if op_type.startswith(OpType.ERROR):
                    name = op_type.partition(":")[2]
                    result.errors[name] = result.errors.get(name, 0) + 1
                else:
                    result.op_counts[op_type] = result.op_counts.get(op_type, 0) + 1
                    result.latencies.setdefault(op_type, []).append(end - start)
        if keep_records:
            result.raw_records = list(state.records)
        obs = self.cluster.obs
        if obs is not None:
            snap = obs.snapshot()
            result.observability = snap
            result.retries = int(
                sum(
                    metric["value"]
                    for metric in snap["metrics"]
                    if metric["name"] == "nam_verb_retries_total"
                )
            )
        return result

    # ------------------------------------------------------------------ #

    def _controller(
        self, state: _ClientState, warmup_s: float, measure_s: float
    ) -> Generator[Any, Any, dict]:
        yield self.cluster.sim.timeout(warmup_s)
        baseline = self.cluster.reset_measurement()
        state.measure_from = self.cluster.now
        yield self.cluster.sim.timeout(measure_s)
        state.stop = True
        # Snapshot counters exactly at the window edge, before the clients'
        # in-flight operations drain.
        return self.cluster.measurement_delta(baseline)

    def _client_loop(
        self,
        client_id: int,
        session,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        state: _ClientState,
        max_ops: Optional[int] = None,
    ) -> Generator[Any, Any, None]:
        drawer = OpDrawer(spec, self.dataset, rng, state, client_id)
        sim = self.cluster.sim
        obs = self.cluster.obs
        remaining = max_ops
        while not state.stop:
            if remaining is not None:
                if remaining == 0:
                    return
                remaining -= 1
            op_kind, op = drawer.next_op()
            start = sim.now
            # The op's final classification is only known after the fact
            # (it may come back as a typed error), so the span is opened
            # under a placeholder and renamed at end_op.
            span = obs.begin_op("op", client_id) if obs is not None else None
            try:
                yield from op(session)
                op_type = op_kind
            except (TimeoutError_, AdmissionRejectedError) as exc:
                # Under injected faults an operation may exhaust its retry
                # budget; under admission control the server may bounce it.
                # The client records the typed failure and moves on — the
                # closed loop survives, mirroring an application that
                # handles the error and continues.
                op_type = f"{OpType.ERROR}:{type(exc).__name__}"
            if span is not None:
                obs.end_op(span, op_type)
                if op_type.startswith(OpType.ERROR):
                    obs.flight_dump("errored-op", span)
            state.records.append((op_type, start, sim.now))
